//! The DSM protocol: a [`mc_sim::Protocol`] implementation covering all
//! four memory modes and the synchronization subsystem.
//!
//! Topology: process `i` runs on node `i` with its [`Replica`]; node
//! `nprocs` is the [`Manager`] (lock manager, barrier manager, and — in SC
//! mode — the central memory server).

use std::collections::HashMap;

use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, ReadLabel, VClock, Value, WriteId};
use mc_sim::{NetCtx, NodeId, Poll, ProcToken, Protocol};

use crate::config::{DsmConfig, LockPropagation, Mode};
use crate::durability::{decode_wal, MemDisk, Snapshot, WalRecord, WalTail};
use crate::manager::Manager;
use crate::msg::{BatchEntry, GrantInfo, Msg, UpdatePayload};
use crate::replica::Replica;
use crate::session::{self, Session, SessionConfig};

/// Timer-token namespace bit for batch flush timers. Session link
/// tokens pack two 32-bit node ids, so their bit 63 is always clear;
/// flush tokens set it and carry the flushing process in the low bits.
const FLUSH_TOKEN_BIT: u64 = 1 << 63;

fn flush_token(p: ProcId) -> u64 {
    FLUSH_TOKEN_BIT | p.0 as u64
}

/// One process's outgoing update buffer (batching enabled only).
/// Entries coalesce same-location writes: `Set` last-write-wins, `Add`
/// sums — each against the *latest* entry for the location, so a
/// kind mismatch starts a new entry and order is preserved.
#[derive(Debug, Default)]
struct OutBatch {
    /// First own-write sequence number buffered.
    first_seq: u32,
    /// Last own-write sequence number buffered.
    upto: u32,
    entries: Vec<BatchEntry>,
    /// Latest entry index per location (coalescing target).
    last_idx: HashMap<Loc, usize>,
    /// Dependency vector of the last buffered write (vector modes).
    deps: Option<VClock>,
    /// Whether a flush timer is pending for this process. Timers cannot
    /// be cancelled, so a timer that fires after a sync-triggered flush
    /// clears the flag and flushes whatever (possibly nothing) is there.
    timer_armed: bool,
}

/// One process's outgoing buffer for a single shard (sharding with
/// batching enabled). Entries coalesce exactly like [`OutBatch`]; the
/// chain link `prev` anchors the batch in the writer's per-shard FIFO
/// chain, and dependencies are the sparse triples of the last member
/// (per-shard clocks are monotone, so the last member's knowledge
/// dominates every earlier member's).
#[derive(Debug, Default)]
struct ShardOutBatch {
    /// The writer's own seq in the shard before the first member.
    prev: u32,
    /// Last own-write sequence buffered.
    upto: u32,
    entries: Vec<BatchEntry>,
    /// Latest entry index per location (coalescing target).
    last_idx: HashMap<Loc, usize>,
    /// Dependency triples of the last buffered write.
    deps: Vec<(u32, ProcId, u32)>,
}

/// A memory or synchronization operation submitted by a process.
#[derive(Clone, Debug)]
pub enum Req {
    /// Labeled read (labels are ignored in the pure modes: PRAM memory
    /// reads PRAM, causal memory reads causal, SC reads at the server).
    Read {
        /// Location.
        loc: Loc,
        /// Consistency label (honored in [`Mode::Mixed`]).
        label: ReadLabel,
    },
    /// Write.
    Write {
        /// Location.
        loc: Loc,
        /// Value stored.
        value: Value,
    },
    /// Commutative increment (counter objects, Section 5.3).
    Update {
        /// Location.
        loc: Loc,
        /// Signed delta (integer or float).
        delta: Value,
    },
    /// Acquire a read or write lock.
    Lock {
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Release a lock.
    Unlock {
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Arrive at (and pass) a barrier.
    Barrier {
        /// Barrier object.
        barrier: BarrierId,
    },
    /// `await(loc = value)`.
    Await {
        /// Location.
        loc: Loc,
        /// Value awaited.
        value: Value,
    },
}

/// The response to a [`Req`].
#[derive(Clone, Debug, PartialEq)]
pub enum Resp {
    /// Read result.
    Value {
        /// The value returned.
        value: Value,
        /// The write that produced it (`None` = initial value).
        writer: Option<WriteId>,
    },
    /// Write/update result.
    Wrote {
        /// The minted write identity.
        id: WriteId,
    },
    /// Lock, unlock.
    Done,
    /// Barrier passed.
    BarrierPassed {
        /// The round that completed.
        round: u32,
    },
    /// Await satisfied.
    Awaited {
        /// The observed value.
        value: Value,
        /// The writes whose application produced it.
        writers: Vec<WriteId>,
    },
}

/// What a parked process is waiting for.
#[derive(Clone, Debug)]
enum Blocked {
    Read {
        loc: Loc,
        label: ReadLabel,
    },
    Await {
        loc: Loc,
        value: Value,
    },
    Lock {
        lock: LockId,
        mode: LockMode,
    },
    UnlockFlush {
        lock: LockId,
    },
    Barrier {
        barrier: BarrierId,
        round: u32,
    },
    /// Waiting for an SC server RPC response.
    Sc,
    /// Waiting for a dynamic shard subscription to be acknowledged by
    /// the directory; the first-touch request retries once it is.
    Subscribe {
        shard: u32,
        retry: Box<Req>,
    },
}

/// The complete DSM protocol state.
#[derive(Debug)]
pub struct Dsm {
    cfg: DsmConfig,
    replicas: Vec<Replica>,
    managers: Vec<Manager>,
    blocked: Vec<Option<Blocked>>,
    held: Vec<HashMap<LockId, LockMode>>,
    granted: Vec<HashMap<LockId, GrantInfo>>,
    flush_acks: Vec<usize>,
    /// Per node: flush probes whose acknowledgement awaits local applies.
    flush_waiters: Vec<Vec<(ProcId, u32)>>,
    barrier_next: Vec<HashMap<BarrierId, u32>>,
    barrier_released: Vec<HashMap<(BarrierId, u32), VClock>>,
    sc_resp: Vec<Option<Resp>>,
    sc_pending_write: Vec<Option<WriteId>>,
    /// Reliable-delivery session layer (`Some` iff [`DsmConfig::reliable`]).
    session: Option<Session>,
    /// Per-process outgoing update buffers (used iff [`DsmConfig::batch`]).
    out_batches: Vec<OutBatch>,
    /// Sender-side shadow of the dependency clock last transmitted on
    /// each directed replica link (vector-clock delta compression).
    link_clock_out: HashMap<(NodeId, NodeId), VClock>,
    /// High-water of own-write sequences already pushed back per
    /// `(this node, reborn peer)` link — chunked recovery responses
    /// repeat `seen`, and the push-back must not repeat with them.
    recover_pushed: HashMap<(NodeId, NodeId), u32>,
    /// Receiver-side shadow clocks reconstructing full vectors from
    /// per-link deltas.
    link_clock_in: HashMap<(NodeId, NodeId), VClock>,
    /// Per-replica simulated disks (meaningful iff [`DsmConfig::durability`]).
    disks: Vec<MemDisk>,
    /// Log records appended since the last snapshot, per replica
    /// (the count-based compaction cadence).
    records_since_snap: Vec<u32>,
    /// Highest reborn-incarnation handled per `(observer node, reborn
    /// process)` — a duplicated raw [`Msg::RecoverReq`] must not reset
    /// the link (and resend the delta) twice.
    recover_seen: HashMap<(NodeId, ProcId), u32>,
    /// Per-node multicast routes (sharding only): `shard_routes[i][s]`
    /// lists the peer processes node `i` knows to subscribe to shard
    /// `s` (self excluded). Seeded from the static interest sets;
    /// dynamic joiners are merged in from [`Msg::SubNotify`],
    /// [`Msg::SubAck`], and recovery answers. Kept sorted so multicast
    /// order is deterministic under DPOR.
    shard_routes: Vec<Vec<Vec<ProcId>>>,
    /// Per-process per-shard outgoing buffers (sharding with batching).
    /// The per-process flush timer in [`OutBatch::timer_armed`] is
    /// shared: one firing flushes every shard's buffer.
    shard_out: Vec<HashMap<u32, ShardOutBatch>>,
}

impl Dsm {
    /// Creates the protocol for a configuration.
    pub fn new(cfg: DsmConfig) -> Self {
        let n = cfg.nprocs;
        if let Some(models) = &cfg.models {
            assert!(
                !models.any_coherent() || cfg.durability.is_none(),
                "coherent lattice points cannot run with durability: \
                 snapshots do not persist last-writer-wins tags"
            );
        }
        let coherent =
            |i: usize| cfg.models.as_ref().is_some_and(|m| m.is_coherent(ProcId(i as u32)));
        // Sharding binds to the replicated modes only: the SC
        // substrate's central server holds the one authoritative copy,
        // so a shard map is accepted but inert there.
        let sharded = cfg.sharding.clone().filter(|_| cfg.mode.is_replicated());
        let shard_routes = match &sharded {
            None => Vec::new(),
            Some(sc) => (0..n)
                .map(|i| {
                    (0..sc.nshards)
                        .map(|s| {
                            (0..n as u32)
                                .map(ProcId)
                                .filter(|&q| q.index() != i && sc.subscribed(q, s))
                                .collect()
                        })
                        .collect()
                })
                .collect(),
        };
        Dsm {
            replicas: (0..n)
                .map(|i| {
                    let r = Replica::new(ProcId(i as u32), n)
                        .with_store_capacity(cfg.locations)
                        .with_coherent(coherent(i));
                    match &sharded {
                        Some(sc) => r.with_sharding(sc.nshards, sc.interest[i].clone()),
                        None => r,
                    }
                })
                .collect(),
            managers: (0..cfg.manager_shards).map(|_| Manager::new(n)).collect(),
            blocked: vec![None; n],
            held: vec![HashMap::new(); n],
            granted: vec![HashMap::new(); n],
            flush_acks: vec![0; n],
            flush_waiters: vec![Vec::new(); n],
            barrier_next: vec![HashMap::new(); n],
            barrier_released: vec![HashMap::new(); n],
            sc_resp: vec![None; n],
            sc_pending_write: vec![None; n],
            session: cfg.reliable.then(|| Session::new(SessionConfig::default())),
            out_batches: (0..n).map(|_| OutBatch::default()).collect(),
            link_clock_out: HashMap::new(),
            recover_pushed: HashMap::new(),
            link_clock_in: HashMap::new(),
            disks: vec![MemDisk::new(); n],
            records_since_snap: vec![0; n],
            recover_seen: HashMap::new(),
            shard_routes,
            shard_out: (0..n).map(|_| HashMap::new()).collect(),
            cfg,
        }
    }

    /// Whether sharded interest-based replication is active (a shard
    /// map on a replicated mode).
    fn sharded(&self) -> bool {
        self.cfg.sharding.is_some() && self.cfg.mode.is_replicated()
    }

    /// The session layer (if enabled) — tests and invariant checks.
    pub fn session(&self) -> Option<&Session> {
        self.session.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Read access to a replica (tests, invariant checks).
    pub fn replica(&self, proc: ProcId) -> &Replica {
        &self.replicas[proc.index()]
    }

    /// The SC server's value of `loc` (SC mode result collection).
    pub fn server_value(&self, loc: Loc) -> Value {
        self.managers[0].peek(loc)
    }

    /// A replica's simulated disk (repro capture, tests).
    pub fn disk(&self, proc: ProcId) -> &MemDisk {
        &self.disks[proc.index()]
    }

    /// Replaces a replica's simulated disk — repro replay restores
    /// captured disk images before re-running a schedule.
    pub fn set_disk(&mut self, proc: ProcId, disk: MemDisk) {
        self.disks[proc.index()] = disk;
    }

    fn manager_node(&self) -> NodeId {
        self.cfg.manager_node()
    }

    fn proc_node(p: ProcId) -> NodeId {
        NodeId(p.0)
    }

    /// Sends one protocol message, through the session layer when it is
    /// enabled. Sessioned payloads keep their *inner* kind in the metrics
    /// (the 8-byte header shows up in the byte counters); retransmissions
    /// and acks are labeled `retransmit` / `session_ack`.
    ///
    /// With tracing on, an update's vector timestamp is attached to the
    /// message span the network just recorded — the same clocks that
    /// order causal delivery double as trace metadata. Batch frames are
    /// annotated with their member writes instead (sequence range plus
    /// the coalesced per-location entries).
    fn send(&mut self, net: &mut NetCtx<'_, Msg>, from: NodeId, to: NodeId, msg: Msg) {
        // Group-commit externalization barrier: no protocol message may
        // leave a replica node while log records are still staged — a
        // peer (or, transitively, the program) could otherwise observe
        // a write that a crash then un-happens. Per-write policies sync
        // at the write itself; group commit relies on this barrier (and
        // on [`Dsm::observe_sync`] for local reads) to amortize one
        // fsync over every record staged since the last.
        if self.cfg.durability.is_some_and(|d| d.group_commit) && from.index() < self.disks.len() {
            self.wal_sync(ProcId(from.0), net);
        }
        let annotation: Option<(&'static str, String)> = if net.tracing() {
            match &msg {
                Msg::Update { deps: Some(deps), .. } => Some(("vclock", deps.to_string())),
                Msg::UpdateBatch { first_seq, upto, entries, delta, .. } => {
                    let members: Vec<String> = entries
                        .iter()
                        .map(|e| match e.payload {
                            UpdatePayload::Set(_) => e.loc.to_string(),
                            UpdatePayload::Add(_) => format!("{}+{}", e.loc, e.adds.len()),
                        })
                        .collect();
                    Some((
                        "batch",
                        format!(
                            "w{first_seq}..={upto} [{}] Δ{}",
                            members.join(","),
                            delta.as_ref().map_or(0, Vec::len)
                        ),
                    ))
                }
                _ => None,
            }
        } else {
            None
        };
        match &mut self.session {
            None => {
                let (kind, bytes) = (msg.kind(), msg.wire_bytes());
                net.send(from, to, kind, bytes, msg);
            }
            Some(s) => {
                let kind = msg.kind();
                let tx = s.sender(from, to);
                let wrapped = tx.wrap(msg);
                if !tx.timer_armed {
                    tx.timer_armed = true;
                    let rto = tx.rto();
                    net.set_timer(from, rto, session::link_token(from, to));
                }
                net.send(from, to, kind, wrapped.wire_bytes(), wrapped);
            }
        }
        if let Some((key, v)) = annotation {
            net.trace_annotate(key, v);
        }
    }

    /// Stages one write-ahead-log record on a replica's disk (not yet
    /// durable — [`Dsm::wal_sync`] is the modeled fsync).
    fn wal_append(&mut self, p: ProcId, rec: &WalRecord, net: &mut NetCtx<'_, Msg>) {
        self.disks[p.index()].append(&rec.encode());
        net.record_wal_append(1);
        self.records_since_snap[p.index()] += 1;
    }

    /// Fsyncs a replica's staged log tail.
    fn wal_sync(&mut self, p: ProcId, net: &mut NetCtx<'_, Msg>) {
        let n = self.disks[p.index()].sync();
        if n > 0 {
            net.record_wal_sync(n);
        }
    }

    /// Fsync before an observation returns. Remote ingests are staged
    /// (appended, unsynced) until some local read or await could expose
    /// them to the program; past that point a crash must not un-happen
    /// them, or a surviving reader would watch its own history regress.
    fn observe_sync(&mut self, p: ProcId, net: &mut NetCtx<'_, Msg>) {
        if self.cfg.durability.is_some() {
            self.wal_sync(p, net);
        }
    }

    /// Compacts a replica's log into a snapshot once the count-based
    /// cadence is due. The log is fsynced first so the snapshot never
    /// covers records a crash could still drop.
    fn maybe_snapshot(&mut self, p: ProcId, net: &mut NetCtx<'_, Msg>) {
        let Some(policy) = self.cfg.durability else { return };
        // Snapshots do not capture per-shard clocks, own chains, or
        // subscriptions: sharded replicas stay log-only, and recovery
        // replays the full WAL.
        if self.sharded() {
            return;
        }
        if self.records_since_snap[p.index()] < policy.snapshot_every {
            return;
        }
        self.wal_sync(p, net);
        let node = Self::proc_node(p);
        let watermarks = match &mut self.session {
            None => Vec::new(),
            Some(s) => (0..self.cfg.nprocs as u32)
                .filter(|&j| j != p.0)
                .map(|j| (ProcId(j), s.receiver(NodeId(j), node).delivered()))
                .collect(),
        };
        let snap = self.replicas[p.index()].to_snapshot(watermarks);
        self.disks[p.index()].install_snapshot(snap.encode());
        self.records_since_snap[p.index()] = 0;
        net.record_snapshot();
    }

    /// Delta compression for a directed replica link: only the clock
    /// components that changed since the last frame on this link go on
    /// the wire, as absolute values. FIFO delivery (native or restored
    /// by the session layer) keeps both shadow clocks in lockstep.
    fn batch_delta(&mut self, from: NodeId, to: NodeId, deps: &VClock) -> Vec<(ProcId, u32)> {
        let prev =
            self.link_clock_out.entry((from, to)).or_insert_with(|| VClock::new(self.cfg.nprocs));
        let changed: Vec<(ProcId, u32)> = (0..self.cfg.nprocs as u32)
            .map(ProcId)
            .filter(|&q| deps[q] != prev[q])
            .map(|q| (q, deps[q]))
            .collect();
        *prev = deps.clone();
        changed
    }

    /// Buffers a local write into the process's outgoing batch,
    /// coalescing against the latest entry for the location, arming the
    /// flush timer on the empty→non-empty transition, and force-flushing
    /// at the policy's size limit.
    fn buffer_write(
        &mut self,
        p: ProcId,
        loc: Loc,
        payload: UpdatePayload,
        id: WriteId,
        deps: Option<VClock>,
        net: &mut NetCtx<'_, Msg>,
    ) {
        let policy = self.cfg.batch.expect("batching enabled");
        let b = &mut self.out_batches[p.index()];
        if b.entries.is_empty() {
            b.first_seq = id.seq;
            if !b.timer_armed {
                b.timer_armed = true;
                let delay = mc_sim::SimTime::from_micros(policy.max_delay_micros);
                net.set_timer(Self::proc_node(p), delay, flush_token(p));
            }
        }
        b.upto = id.seq;
        b.deps = deps;
        let coalesced = match b.last_idx.get(&loc) {
            Some(&idx) => {
                let e = &mut b.entries[idx];
                match (&mut e.payload, &payload) {
                    (UpdatePayload::Set(cur), UpdatePayload::Set(v)) => {
                        *cur = *v;
                        e.writer = id;
                        true
                    }
                    (UpdatePayload::Add(cur), UpdatePayload::Add(d)) => match cur.checked_add(*d) {
                        Some(sum) => {
                            *cur = sum;
                            e.adds.push(id.seq);
                            e.writer = id;
                            true
                        }
                        None => false,
                    },
                    // Kind mismatch: a fresh entry keeps application order.
                    _ => false,
                }
            }
            None => false,
        };
        if !coalesced {
            let adds = match &payload {
                UpdatePayload::Add(_) => vec![id.seq],
                UpdatePayload::Set(_) => Vec::new(),
            };
            b.last_idx.insert(loc, b.entries.len());
            b.entries.push(BatchEntry { loc, payload, writer: id, adds });
        }
        if b.entries.len() >= policy.max_updates {
            self.flush_updates(p, net);
        }
    }

    /// Flushes the process's outgoing batch (no-op when empty or when
    /// batching is off) to every peer replica, attaching a per-link
    /// dependency-clock delta and — when the session layer runs — a
    /// piggybacked cumulative ack for the reverse link. Called before
    /// every message that establishes `↦lock`/`↦bar` order, at the size
    /// limit, and on the delay timer.
    fn flush_updates(&mut self, p: ProcId, net: &mut NetCtx<'_, Msg>) {
        if self.cfg.batch.is_none() {
            return;
        }
        if self.sharded() {
            self.flush_shards(p, net);
            return;
        }
        let b = &mut self.out_batches[p.index()];
        if b.entries.is_empty() {
            return;
        }
        // One shared buffer for the whole fan-out: each peer's message
        // (and any session retransmit copy) bumps a refcount instead of
        // deep-cloning the entries.
        let entries: std::sync::Arc<[BatchEntry]> = std::mem::take(&mut b.entries).into();
        b.last_idx.clear();
        let (first_seq, upto) = (b.first_seq, b.upto);
        let deps = b.deps.take();
        let from = Self::proc_node(p);
        for j in 0..self.cfg.nprocs as u32 {
            if j == p.0 {
                continue;
            }
            let to = NodeId(j);
            let delta = deps.as_ref().map(|d| self.batch_delta(from, to, d));
            let ack = self.session.as_mut().and_then(|s| {
                let rx = s.receiver(to, from);
                let upto = rx.delivered();
                (upto > 0).then_some((upto, rx.epoch()))
            });
            let msg =
                Msg::UpdateBatch { proc: p, first_seq, upto, entries: entries.clone(), delta, ack };
            self.send(net, from, to, msg);
        }
    }

    /// Broadcasts an update to every *replica* node except the writer's.
    fn broadcast_update(&mut self, net: &mut NetCtx<'_, Msg>, from: ProcId, msg: Msg) {
        for i in 0..self.cfg.nprocs as u32 {
            if i != from.0 {
                self.send(net, Self::proc_node(from), NodeId(i), msg.clone());
            }
        }
    }

    /// Multicasts a sharded message to the peers node `from` knows to
    /// subscribe to `shard` — the partial-replication replacement for
    /// [`Dsm::broadcast_update`].
    fn multicast_shard(&mut self, net: &mut NetCtx<'_, Msg>, from: ProcId, shard: u32, msg: Msg) {
        let peers = self.shard_routes[from.index()][shard as usize].clone();
        for q in peers {
            self.send(net, Self::proc_node(from), Self::proc_node(q), msg.clone());
        }
    }

    /// Records at `node` that `q` subscribes to `shard` (route tables
    /// never list the node's own process; insertion keeps them sorted
    /// for deterministic multicast order).
    fn add_shard_route(&mut self, node: NodeId, shard: u32, q: ProcId) {
        if q.0 == node.0 {
            return;
        }
        let routes = &mut self.shard_routes[node.index()][shard as usize];
        if let Err(i) = routes.binary_search(&q) {
            routes.insert(i, q);
        }
    }

    /// Gates a sharded access to `loc` on a subscription to its shard.
    /// Returns `true` when the access may proceed (not sharded, or
    /// already subscribed). A first touch outside the interest set
    /// parks the process on a directory round-trip when the dynamic
    /// fallback is enabled, and is a program error otherwise.
    fn shard_gate(
        &mut self,
        p: ProcId,
        node: NodeId,
        loc: Loc,
        req: &Req,
        net: &mut NetCtx<'_, Msg>,
    ) -> bool {
        if !self.sharded() {
            return true;
        }
        let (shard, dynamic) = {
            let sc = self.cfg.sharding.as_ref().expect("sharded");
            (sc.shard_of(loc), sc.dynamic)
        };
        if self.replicas[p.index()].shards().expect("sharded").subscribed(shard) {
            return true;
        }
        assert!(
            dynamic,
            "{p} touches {loc} (shard {shard}) outside its interest set \
             and the dynamic subscribe-on-first-touch fallback is off"
        );
        let shard = shard as u32;
        let mgr = self.manager_node();
        self.send(net, node, mgr, Msg::SubReq { proc: p, shard });
        self.blocked[p.index()] = Some(Blocked::Subscribe { shard, retry: Box::new(req.clone()) });
        false
    }

    /// Buffers a sharded local write into the process's per-shard
    /// outgoing batch (sharding with batching), coalescing like
    /// [`Dsm::buffer_write`] and sharing the per-process flush timer.
    #[allow(clippy::too_many_arguments)]
    fn buffer_shard_write(
        &mut self,
        p: ProcId,
        loc: Loc,
        payload: UpdatePayload,
        id: WriteId,
        prev: u32,
        deps: Vec<(u32, ProcId, u32)>,
        net: &mut NetCtx<'_, Msg>,
    ) {
        let policy = self.cfg.batch.expect("batching enabled");
        let shard = self.cfg.sharding.as_ref().expect("sharded").shard_of(loc) as u32;
        // Program order crosses shards: this write's dependency triples
        // cover the process's own *buffered* writes in other shards, so
        // two chains buffered concurrently could each require a member
        // of the other and deadlock every receiver. Ship the other
        // shards' buffers first — a chain then only references own
        // writes already on the wire, and coalescing still collapses
        // runs of same-shard writes (the locality case sharding is
        // built around).
        let mut others: Vec<u32> = self.shard_out[p.index()]
            .iter()
            .filter(|&(&s, b)| s != shard && !b.entries.is_empty())
            .map(|(&s, _)| s)
            .collect();
        others.sort_unstable();
        for s in others {
            self.flush_shard(p, s, net);
        }
        if !self.out_batches[p.index()].timer_armed {
            self.out_batches[p.index()].timer_armed = true;
            let delay = mc_sim::SimTime::from_micros(policy.max_delay_micros);
            net.set_timer(Self::proc_node(p), delay, flush_token(p));
        }
        let b = self.shard_out[p.index()].entry(shard).or_default();
        if b.entries.is_empty() {
            b.prev = prev;
        }
        b.upto = id.seq;
        b.deps = deps;
        let coalesced = match b.last_idx.get(&loc) {
            Some(&idx) => {
                let e = &mut b.entries[idx];
                match (&mut e.payload, &payload) {
                    (UpdatePayload::Set(cur), UpdatePayload::Set(v)) => {
                        *cur = *v;
                        e.writer = id;
                        true
                    }
                    (UpdatePayload::Add(cur), UpdatePayload::Add(d)) => match cur.checked_add(*d) {
                        Some(sum) => {
                            *cur = sum;
                            e.adds.push(id.seq);
                            e.writer = id;
                            true
                        }
                        None => false,
                    },
                    _ => false,
                }
            }
            None => false,
        };
        if !coalesced {
            let adds = match &payload {
                UpdatePayload::Add(_) => vec![id.seq],
                UpdatePayload::Set(_) => Vec::new(),
            };
            b.last_idx.insert(loc, b.entries.len());
            b.entries.push(BatchEntry { loc, payload, writer: id, adds });
        }
        if b.entries.len() >= policy.max_updates {
            self.flush_shard(p, shard, net);
        }
    }

    /// Flushes one shard's outgoing buffer to its subscribers.
    fn flush_shard(&mut self, p: ProcId, shard: u32, net: &mut NetCtx<'_, Msg>) {
        let Some(b) = self.shard_out[p.index()].get_mut(&shard) else { return };
        if b.entries.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut b.entries);
        b.last_idx.clear();
        let (prev, upto) = (b.prev, b.upto);
        let deps = std::mem::take(&mut b.deps);
        let msg =
            Msg::ShardUpdateBatch { proc: p, shard, prev, upto, entries: entries.into(), deps };
        self.multicast_shard(net, p, shard, msg);
    }

    /// Flushes every non-empty per-shard buffer of `p`, in shard order
    /// (deterministic under DPOR).
    fn flush_shards(&mut self, p: ProcId, net: &mut NetCtx<'_, Msg>) {
        let mut shards: Vec<u32> = self.shard_out[p.index()]
            .iter()
            .filter(|(_, b)| !b.entries.is_empty())
            .map(|(&s, _)| s)
            .collect();
        shards.sort_unstable();
        for s in shards {
            self.flush_shard(p, s, net);
        }
    }

    /// The effective label of a read issued by `proc` — per process
    /// under a model assignment, per the global mode otherwise.
    fn effective_label(&self, proc: ProcId, label: ReadLabel) -> ReadLabel {
        self.cfg.read_policy(proc, label)
    }

    fn read_ready(
        &mut self,
        proc: ProcId,
        loc: Loc,
        label: ReadLabel,
        net: &mut NetCtx<'_, Msg>,
    ) -> Option<Resp> {
        let r = &mut self.replicas[proc.index()];
        let ok = match label {
            ReadLabel::Causal => r.causal_ready(loc),
            ReadLabel::Pram => r.pram_ready(loc),
        };
        if !ok {
            return None;
        }
        let value = r.value(loc);
        let writer = r.writer_of(loc);
        self.observe_sync(proc, net);
        Some(Resp::Value { value, writer })
    }

    fn await_ready(
        &mut self,
        proc: ProcId,
        loc: Loc,
        value: Value,
        net: &mut NetCtx<'_, Msg>,
    ) -> Option<Resp> {
        let r = &mut self.replicas[proc.index()];
        if r.value(loc) != value {
            return None;
        }
        let writers = r.await_writers(loc);
        self.observe_sync(proc, net);
        Some(Resp::Awaited { value, writers })
    }

    /// Sends the release to the manager, shipping demand/lazy metadata.
    /// Buffered updates flush first: the release establishes `↦lock`
    /// order, so every write program-ordered before it must already be
    /// on the wire (FIFO links then deliver them ahead of any knowledge
    /// derived from this release).
    fn finish_release(&mut self, proc: ProcId, lock: LockId, net: &mut NetCtx<'_, Msg>) {
        self.flush_updates(proc, net);
        let mode = self.held[proc.index()]
            .remove(&lock)
            .unwrap_or_else(|| panic!("{proc} releases {lock} it does not hold"));
        let r = &mut self.replicas[proc.index()];
        let dirty = if self.cfg.lock_propagation == LockPropagation::DemandDriven {
            r.take_dirty(lock)
        } else {
            Vec::new()
        };
        let knowledge =
            if self.cfg.mode.carries_vectors() { r.knowledge() } else { VClock::new(0) };
        let msg = Msg::LockRel { proc, lock, mode, knowledge, own_count: r.own_count(), dirty };
        let mgr = self.cfg.lock_manager_node(lock);
        self.send(net, Self::proc_node(proc), mgr, msg);
    }

    /// The knowledge vector a process attaches to barrier arrivals.
    fn sync_knowledge(&self, proc: ProcId) -> VClock {
        match self.cfg.mode {
            Mode::Causal | Mode::Mixed => self.replicas[proc.index()].knowledge(),
            // PRAM barriers carry the per-sender update counts (Section 6).
            Mode::Pram => self.replicas[proc.index()].applied.clone(),
            Mode::Sc => VClock::new(0),
        }
    }

    /// Delivers manager outbox messages to the owning replica nodes.
    fn deliver_outbox(&mut self, net: &mut NetCtx<'_, Msg>, from: NodeId, out: Vec<(ProcId, Msg)>) {
        for (proc, msg) in out {
            self.send(net, from, Self::proc_node(proc), msg);
        }
    }

    /// After applies at `node`, acknowledge any satisfied flush probes.
    fn drain_flush_waiters(&mut self, node: NodeId, net: &mut NetCtx<'_, Msg>) {
        let waiters = std::mem::take(&mut self.flush_waiters[node.index()]);
        let (ready, still): (Vec<_>, Vec<_>) = waiters
            .into_iter()
            .partition(|&(fp, upto)| self.replicas[node.index()].applied[fp] >= upto);
        self.flush_waiters[node.index()] = still;
        for (from_proc, _) in ready {
            self.send(net, node, Self::proc_node(from_proc), Msg::FlushAck);
        }
    }
}

impl Protocol for Dsm {
    type Msg = Msg;
    type Req = Req;
    type Resp = Resp;

    fn on_request(
        &mut self,
        proc: ProcToken,
        node: NodeId,
        req: Req,
        net: &mut NetCtx<'_, Msg>,
    ) -> Poll<Resp> {
        let p = ProcId(proc.0);
        debug_assert_eq!(node, Self::proc_node(p), "process i runs on node i");
        match req {
            Req::Read { loc, label } => {
                if self.cfg.mode == Mode::Sc {
                    self.send(net, node, self.manager_node(), Msg::ScRead { proc: p, loc });
                    self.blocked[p.index()] = Some(Blocked::Sc);
                    return Poll::Pending;
                }
                if !self.shard_gate(p, node, loc, &Req::Read { loc, label }, net) {
                    return Poll::Pending;
                }
                let label = self.effective_label(p, label);
                match self.read_ready(p, loc, label, net) {
                    Some(resp) => Poll::Ready(resp),
                    None => {
                        self.blocked[p.index()] = Some(Blocked::Read { loc, label });
                        Poll::Pending
                    }
                }
            }
            Req::Write { loc, value } => {
                self.do_write(p, node, loc, UpdatePayload::Set(value), net)
            }
            Req::Update { loc, delta } => {
                self.do_write(p, node, loc, UpdatePayload::Add(delta), net)
            }
            Req::Lock { lock, mode } => {
                assert!(!self.sharded(), "locks are not supported with sharding");
                assert!(!self.held[p.index()].contains_key(&lock), "{p} re-acquires {lock}");
                self.send(
                    net,
                    node,
                    self.cfg.lock_manager_node(lock),
                    Msg::LockReq { proc: p, lock, mode },
                );
                self.blocked[p.index()] = Some(Blocked::Lock { lock, mode });
                Poll::Pending
            }
            Req::Unlock { lock, mode } => {
                let held = self.held[p.index()].get(&lock).copied();
                assert_eq!(held, Some(mode), "{p} unlocks {lock} with wrong mode");
                let eager_flush = self.cfg.lock_propagation == LockPropagation::Eager
                    && self.cfg.mode.is_replicated()
                    && self.cfg.nprocs > 1;
                if eager_flush {
                    // Buffered updates must precede the flush probes on
                    // every link, or peers could never reach `upto`.
                    self.flush_updates(p, net);
                    let upto = self.replicas[p.index()].own_count();
                    self.flush_acks[p.index()] = 0;
                    for i in 0..self.cfg.nprocs as u32 {
                        if i != p.0 {
                            self.send(net, node, NodeId(i), Msg::Flush { from_proc: p, upto });
                        }
                    }
                    self.blocked[p.index()] = Some(Blocked::UnlockFlush { lock });
                    Poll::Pending
                } else {
                    self.finish_release(p, lock, net);
                    Poll::Ready(Resp::Done)
                }
            }
            Req::Barrier { barrier } => {
                assert!(!self.sharded(), "barriers are not supported with sharding");
                let round = {
                    let e = self.barrier_next[p.index()].entry(barrier).or_insert(0);
                    let r = *e;
                    *e += 1;
                    r
                };
                // The arrival establishes `↦bar` order: flush first so
                // participants released with our knowledge can apply
                // the writes it promises.
                self.flush_updates(p, net);
                let knowledge = self.sync_knowledge(p);
                self.send(
                    net,
                    node,
                    self.cfg.barrier_manager_node(barrier),
                    Msg::BarrierArrive { proc: p, barrier, round, knowledge },
                );
                self.blocked[p.index()] = Some(Blocked::Barrier { barrier, round });
                Poll::Pending
            }
            Req::Await { loc, value } => {
                if self.cfg.mode == Mode::Sc {
                    self.send(net, node, self.manager_node(), Msg::ScAwait { proc: p, loc, value });
                    self.blocked[p.index()] = Some(Blocked::Sc);
                    return Poll::Pending;
                }
                if !self.shard_gate(p, node, loc, &Req::Await { loc, value }, net) {
                    return Poll::Pending;
                }
                match self.await_ready(p, loc, value, net) {
                    Some(resp) => Poll::Ready(resp),
                    None => {
                        // Blocking on a flag others may in turn await:
                        // don't sit on unflushed writes while parked.
                        self.flush_updates(p, net);
                        self.blocked[p.index()] = Some(Blocked::Await { loc, value });
                        Poll::Pending
                    }
                }
            }
        }
    }

    fn on_message(&mut self, to: NodeId, from: NodeId, msg: Msg, net: &mut NetCtx<'_, Msg>) {
        // Session layer: unwrap, sequence, acknowledge. Acks travel raw
        // (a sessioned ack would need its own ack, ad infinitum); they are
        // cumulative, so losing or duplicating them is harmless.
        match msg {
            Msg::SessAck { upto, epoch } => {
                let s = self.session.as_mut().expect("ack without session layer");
                let cfg = s.cfg;
                s.sender(to, from).on_ack(upto, epoch, &cfg);
            }
            Msg::SessData { seq, epoch, inner } => {
                let s = self.session.as_mut().expect("session data without session layer");
                let rx = s.receiver(from, to);
                let (ready, upto) = rx.on_data(seq, epoch, *inner);
                let ack = Msg::SessAck { upto, epoch: rx.epoch() };
                net.send(to, from, ack.kind(), ack.wire_bytes(), ack);
                for m in ready {
                    self.dispatch(to, from, m, net);
                }
            }
            other => self.dispatch(to, from, other, net),
        }
    }

    fn poll_blocked(
        &mut self,
        proc: ProcToken,
        _node: NodeId,
        net: &mut NetCtx<'_, Msg>,
    ) -> Option<Resp> {
        self.poll_blocked_inner(proc, net)
    }

    fn on_timer(&mut self, node: NodeId, token: u64, net: &mut NetCtx<'_, Msg>) {
        if token & FLUSH_TOKEN_BIT != 0 {
            let p = ProcId((token & !FLUSH_TOKEN_BIT) as u32);
            debug_assert_eq!(node, Self::proc_node(p), "flush timer fires at the writer");
            self.out_batches[p.index()].timer_armed = false;
            self.flush_updates(p, net);
            return;
        }
        let Some(s) = &mut self.session else { return };
        let cfg = s.cfg;
        let (from, to) = session::token_link(token);
        debug_assert_eq!(from, node, "timer fires at the sending node");
        let tx = s.sender(from, to);
        // The interval this expiry actually waited is the rto the timer
        // was armed with — sample it *before* `on_timeout` doubles it.
        let waited = tx.rto();
        let rexmit = tx.on_timeout(&cfg);
        if rexmit.is_empty() {
            // Everything acked since the timer was armed: let it lapse.
            tx.timer_armed = false;
            return;
        }
        net.record_rto(waited);
        let rto = tx.rto();
        let epoch = tx.epoch();
        net.set_timer(node, rto, token);
        for (seq, inner) in rexmit {
            let m = Msg::SessData { seq, epoch, inner: Box::new(inner) };
            net.send(from, to, "retransmit", m.wire_bytes(), m);
            if net.tracing() {
                net.trace_annotate("seq", seq.to_string());
            }
        }
    }

    /// Crash-recover a replica node: drop the unsynced log tail, rebuild
    /// the replica from snapshot + log, bump (and persist) the
    /// incarnation, wipe every piece of volatile per-link state, and ask
    /// the peers for the missing delta.
    ///
    /// In the simulator the crash models the *memory system's* node, not
    /// the client: the program (and the read gates / lock bookkeeping it
    /// has earned) survives and keeps running against the reborn replica.
    fn on_crash_recover(&mut self, node: NodeId, net: &mut NetCtx<'_, Msg>) {
        assert!(
            !self.cfg.is_manager_node(node),
            "crash-recover of a manager node is unsupported (managers keep no durable state)"
        );
        let i = node.index();
        let p = ProcId(node.0);
        // Power loss: staged (appended, never fsynced) records are gone.
        let lost = self.disks[i].crash();
        if lost > 0 {
            net.record_wal_lost(lost);
        }
        // Rebuild from disk: snapshot first, then replay the log suffix
        // through the normal ingest machinery.
        let (snap_bytes, log_bytes) = {
            let (s, l) = self.disks[i].load();
            (s.map(<[u8]>::to_vec), l.to_vec())
        };
        let fresh = match &snap_bytes {
            Some(bytes) => {
                let snap = Snapshot::decode(bytes).expect("simulated snapshots never corrupt");
                Replica::from_snapshot(p, self.cfg.nprocs, &snap)
                    .with_store_capacity(self.cfg.locations)
            }
            None => Replica::new(p, self.cfg.nprocs).with_store_capacity(self.cfg.locations),
        };
        // Sharded replicas are log-only (no snapshots): rebuild with the
        // static interest set, then let WAL replay re-mint own writes,
        // re-ingest remote chains, and restore dynamic subscriptions.
        let fresh = match self.cfg.sharding.as_ref().filter(|_| self.cfg.mode.is_replicated()) {
            Some(sc) => fresh.with_sharding(sc.nshards, sc.interest[i].clone()),
            None => fresh,
        };
        let old = std::mem::replace(&mut self.replicas[i], fresh);
        let (records, tail) = decode_wal(&log_bytes);
        debug_assert!(
            matches!(tail, WalTail::Clean),
            "MemDisk drops whole staged records, never torn bytes"
        );
        let replayed = records.len() as u64;
        for rec in records {
            self.replicas[i].replay_record(rec, self.cfg.mode);
        }
        if replayed > 0 {
            net.record_wal_replayed(replayed);
        }
        let r = &mut self.replicas[i];
        // The client program survives: carry its earned read gates and
        // lock watermarks onto the reborn replica, so post-crash reads
        // still wait for everything the program has already observed.
        r.must_see = old.must_see;
        r.pram_wait = old.pram_wait;
        r.invalid = old.invalid;
        r.lock_watermarks = old.lock_watermarks;
        // New incarnation, persisted (and fsynced) before any session
        // traffic, so a second crash cannot resurrect this epoch space.
        let inc = r.incarnation.max(old.incarnation) + 1;
        r.incarnation = inc;
        let rec = WalRecord::Incarnation { incarnation: inc };
        self.disks[i].append(&rec.encode());
        net.record_wal_append(1);
        let synced = self.disks[i].sync();
        net.record_wal_sync(synced);
        self.records_since_snap[i] = replayed as u32 + 1;
        // Volatile state is gone: session links (fresh senders start at
        // the incarnation's base epoch), shadow clocks, and the
        // outgoing batch — its writes are durable in the own-write
        // history and travel in the push-back of each RecoverResp.
        if let Some(s) = &mut self.session {
            s.set_base_epoch(node, inc);
            s.forget_node_links(node);
        }
        self.out_batches[i] = OutBatch::default();
        self.shard_out[i].clear();
        self.link_clock_out.retain(|&(f, _), _| f != node);
        self.link_clock_in.retain(|&(_, t), _| t != node);
        // Fetch the missing delta: a raw (never sessioned) request to
        // every peer replica. Sharded recovery ships the per-shard
        // applied summary instead of the global vector — peers answer
        // only for the shards they share, so the reborn replica
        // re-fetches exactly its subscribed state.
        if self.sharded() {
            let summary = self.replicas[i].shards().expect("sharded").applied_summary();
            for j in 0..self.cfg.nprocs as u32 {
                if j == node.0 {
                    continue;
                }
                let msg =
                    Msg::ShardRecoverReq { proc: p, incarnation: inc, applied: summary.clone() };
                net.send(node, NodeId(j), msg.kind(), msg.wire_bytes(), msg);
            }
            return;
        }
        let applied = self.replicas[i].applied.clone();
        for j in 0..self.cfg.nprocs as u32 {
            if j == node.0 {
                continue;
            }
            let msg = Msg::RecoverReq { proc: p, incarnation: inc, applied: applied.clone() };
            net.send(node, NodeId(j), msg.kind(), msg.wire_bytes(), msg);
        }
    }

    /// Staged (appended, unsynced) log records across all disks — the
    /// kernel samples this for the WAL conservation law.
    fn durable_staged(&self) -> u64 {
        self.disks.iter().map(MemDisk::staged_records).sum()
    }
}

impl Dsm {
    /// Delivers one unwrapped protocol message (the pre-session
    /// `on_message` body).
    fn dispatch(&mut self, to: NodeId, from: NodeId, msg: Msg, net: &mut NetCtx<'_, Msg>) {
        if self.cfg.is_manager_node(to) {
            let shard = to.index() - self.cfg.nprocs;
            let manager = &mut self.managers[shard];
            let out = match msg {
                Msg::LockReq { proc, lock, mode } => {
                    manager.lock_request(proc, lock, mode, &self.cfg)
                }
                Msg::LockRel { proc, lock, knowledge, own_count, dirty, .. } => {
                    manager.lock_release(proc, lock, knowledge, own_count, dirty, &self.cfg)
                }
                Msg::BarrierArrive { proc, barrier, round, knowledge } => {
                    manager.barrier_arrive(proc, barrier, round, knowledge, &self.cfg)
                }
                Msg::ScRead { proc, loc } => manager.sc_read(proc, loc),
                Msg::ScWrite { writer, loc, payload } => manager.sc_write(writer, loc, payload),
                Msg::ScAwait { proc, loc, value } => manager.sc_await(proc, loc, value),
                Msg::SubReq { proc, shard } => manager.sub_req(proc, shard, &self.cfg),
                other => panic!("manager received unexpected {other:?}"),
            };
            self.deliver_outbox(net, to, out);
            return;
        }

        let i = to.index();
        match msg {
            Msg::Update { writer, loc, payload, deps } => {
                // Recovery can re-deliver an update the disk already
                // holds (an in-flight pre-crash copy racing the fresh
                // epoch): drop it by sequence. Without durability,
                // duplicate chaos stays visible to the checkers.
                if self.cfg.durability.is_some()
                    && writer.seq <= self.replicas[i].applied[writer.proc]
                {
                    return;
                }
                if self.cfg.durability.is_some() {
                    let rec = WalRecord::Ingest {
                        writer,
                        loc,
                        payload: payload.clone(),
                        deps: deps.clone(),
                    };
                    self.wal_append(ProcId(to.0), &rec, net);
                    self.maybe_snapshot(ProcId(to.0), net);
                }
                let applied = self.replicas[i].ingest(writer, loc, payload, deps, self.cfg.mode);
                if applied {
                    self.drain_flush_waiters(to, net);
                }
            }
            Msg::UpdateBatch { proc, first_seq, upto, entries, delta, ack } => {
                // A piggybacked ack covers the reverse link, sparing a
                // standalone SessAck's information (the standalone still
                // travels; cumulative acks are idempotent). The epoch tag
                // keeps a pre-crash ack from advancing a reborn sender.
                if let Some((upto, epoch)) = ack {
                    if let Some(s) = &mut self.session {
                        let cfg = s.cfg;
                        s.sender(to, from).on_ack(upto, epoch, &cfg);
                    }
                }
                // Reconstruct the full dependency clock from the
                // per-link delta against this link's shadow copy. This
                // happens before the recovery-ghost check: any batch
                // that reaches dispatch belongs to the link's current
                // epoch chain (stale-epoch traffic dies in the session
                // receiver, pre-crash in-flight dies with the crash), so
                // even a ghost's delta must advance the shadow to keep
                // it in lock-step with the sender's.
                let deps = delta.map(|dv| {
                    let prev = self
                        .link_clock_in
                        .entry((from, to))
                        .or_insert_with(|| VClock::new(self.cfg.nprocs));
                    for (q, c) in dv {
                        prev.set(q, c);
                    }
                    prev.clone()
                });
                // Recovery ghost: the batch's content is already on disk
                // (or covered by a RecoverResp) — the replica must not
                // re-apply it and the WAL must not re-log it. Batch
                // windows from one writer never partially overlap, so a
                // whole-batch skip is exact.
                if self.cfg.durability.is_some() && upto <= self.replicas[i].applied[proc] {
                    return;
                }
                if self.cfg.durability.is_some() {
                    let rec = WalRecord::IngestBatch {
                        proc,
                        first_seq,
                        upto,
                        entries: entries.to_vec(),
                        deps: deps.clone(),
                    };
                    self.wal_append(ProcId(to.0), &rec, net);
                    self.maybe_snapshot(ProcId(to.0), net);
                }
                let applied = self.replicas[i].ingest_batch(
                    proc,
                    first_seq,
                    upto,
                    entries,
                    deps,
                    self.cfg.mode,
                );
                if applied {
                    self.drain_flush_waiters(to, net);
                }
            }
            Msg::RecoverReq { proc: reborn, incarnation, applied } => {
                debug_assert_eq!(Self::proc_node(reborn), from, "requests come from the reborn");
                // Dedup: the request travels raw (a sessioned request
                // would need the very link state the crash destroyed),
                // so the network may duplicate it.
                let handled = self.recover_seen.entry((to, reborn)).or_insert(0);
                if incarnation <= *handled {
                    return;
                }
                *handled = incarnation;
                let p = ProcId(to.0);
                // Writes still coalescing in the out-batch are already
                // in our durable history; flush so the recovery delta
                // and the shadow clocks agree on what has been sent.
                self.flush_updates(p, net);
                // Reset the session link toward the reborn node.
                // Update-class payloads are dropped rather than
                // re-wrapped: their content (with full dependency
                // vectors) travels in the RecoverResp below, and their
                // deltas reference shadow clocks about to be cleared.
                if let Some(s) = &mut self.session {
                    let wire = s.reset_sender_with(to, from, |m| {
                        !matches!(
                            m,
                            Msg::Update { .. } | Msg::UpdateBatch { .. } | Msg::RecoverResp { .. }
                        )
                    });
                    let resend = !wire.is_empty();
                    for m in wire {
                        net.send(to, from, "retransmit", m.wire_bytes(), m);
                    }
                    if resend {
                        let tx = s.sender(to, from);
                        if !tx.timer_armed {
                            tx.timer_armed = true;
                            let rto = tx.rto();
                            net.set_timer(to, rto, session::link_token(to, from));
                        }
                    }
                }
                self.link_clock_out.remove(&(to, from));
                self.link_clock_in.remove(&(from, to));
                // Answer with the suffix of our own writes the reborn
                // replica is missing — full dependency vectors, no link
                // delta — plus how much of *its* history we hold, so it
                // can push back its own suffix.
                self.recover_pushed.remove(&(to, from));
                let r = &self.replicas[i];
                let after = applied[p];
                let seen = r.applied[reborn];
                // One response per dependency-homogeneous chunk: a
                // single batch gated on its last member's vector
                // deadlocks when two survivors' deltas cross-reference
                // each other's writes (see `Replica::delta_chunks`).
                let chunks = r.delta_chunks(after);
                if chunks.is_empty() {
                    let resp = Msg::RecoverResp {
                        proc: p,
                        first_seq: after + 1,
                        upto: after,
                        entries: Vec::new(),
                        deps: None,
                        seen,
                    };
                    self.send(net, to, from, resp);
                } else {
                    for (first_seq, upto, entries, deps) in chunks {
                        let resp =
                            Msg::RecoverResp { proc: p, first_seq, upto, entries, deps, seen };
                        self.send(net, to, from, resp);
                    }
                }
            }
            Msg::RecoverResp { proc, first_seq, upto, entries, deps, seen } => {
                let p = ProcId(to.0);
                // Continuity guard: a duplicated response (or one raced
                // by an in-flight pre-crash copy) re-covers applied
                // prefix — skip it rather than double-ingest.
                if upto >= first_seq && first_seq > self.replicas[i].applied[proc] {
                    if self.cfg.durability.is_some() {
                        let rec = WalRecord::IngestBatch {
                            proc,
                            first_seq,
                            upto,
                            entries: entries.clone(),
                            deps: deps.clone(),
                        };
                        self.wal_append(p, &rec, net);
                        self.maybe_snapshot(p, net);
                    }
                    let applied = self.replicas[i].ingest_batch(
                        proc,
                        first_seq,
                        upto,
                        entries.into(),
                        deps,
                        self.cfg.mode,
                    );
                    if applied {
                        self.drain_flush_waiters(to, net);
                    }
                }
                // Push back our own suffix the responder has not seen,
                // as plain batches chunked at dependency boundaries: the
                // shadow clocks for this link were cleared on both
                // sides, so the first delta degenerates to the full
                // vector. High-watered — one RecoverResp arrives per
                // chunk and each repeats `seen`, so the suffix must be
                // pushed exactly once.
                let pushed = self.recover_pushed.get(&(to, from)).copied().unwrap_or(0);
                let chunks = self.replicas[i].delta_chunks(seen.max(pushed));
                if let Some(&(_, last_upto, _, _)) = chunks.last() {
                    self.recover_pushed.insert((to, from), last_upto);
                }
                for (fs, u, es, d) in chunks {
                    let delta = d.as_ref().map(|deps| self.batch_delta(to, from, deps));
                    let msg = Msg::UpdateBatch {
                        proc: p,
                        first_seq: fs,
                        upto: u,
                        entries: es.into(),
                        delta,
                        ack: None,
                    };
                    self.send(net, to, from, msg);
                }
            }
            Msg::Flush { from_proc, upto } => {
                if self.replicas[i].applied[from_proc] >= upto {
                    self.send(net, to, Self::proc_node(from_proc), Msg::FlushAck);
                } else {
                    self.flush_waiters[i].push((from_proc, upto));
                }
            }
            Msg::FlushAck => {
                self.flush_acks[i] += 1;
            }
            Msg::LockGrant { lock, grant } => {
                self.granted[i].insert(lock, grant);
            }
            Msg::BarrierRelease { barrier, round, knowledge } => {
                self.barrier_released[i].insert((barrier, round), knowledge);
            }
            Msg::ScReadResp { value, writer } => {
                self.sc_resp[i] = Some(Resp::Value { value, writer });
            }
            Msg::ScWriteAck => {
                let id = self.sc_pending_write[i].take().expect("pending SC write");
                self.sc_resp[i] = Some(Resp::Wrote { id });
            }
            Msg::ScAwaitResp { value, writers } => {
                self.sc_resp[i] = Some(Resp::Awaited { value, writers });
            }
            Msg::ShardUpdate { writer, loc, payload, prev, deps } => {
                let p = ProcId(to.0);
                let shard = self.replicas[i].shards().expect("sharded").shard_of(loc);
                // Recovery ghost: content already on disk (or covered by
                // a ShardRecoverResp) — skip the re-log and re-apply.
                if self.cfg.durability.is_some() {
                    let have =
                        self.replicas[i].shards().expect("sharded").applied(shard).get(writer.proc);
                    if writer.seq <= have {
                        return;
                    }
                    let rec = WalRecord::IngestSharded {
                        writer,
                        loc,
                        payload: payload.clone(),
                        prev,
                        deps: deps.clone(),
                    };
                    self.wal_append(p, &rec, net);
                }
                self.replicas[i].ingest_sharded(writer, loc, payload, prev, deps, self.cfg.mode);
            }
            Msg::ShardUpdateBatch { proc, shard, prev, upto, entries, deps } => {
                let p = ProcId(to.0);
                if self.cfg.durability.is_some() {
                    let have = self.replicas[i]
                        .shards()
                        .expect("sharded")
                        .applied(shard as usize)
                        .get(proc);
                    if upto <= have {
                        return;
                    }
                    let rec = WalRecord::IngestShardChain {
                        proc,
                        shard,
                        prev,
                        upto,
                        entries: entries.to_vec(),
                        deps: deps.clone(),
                        trim: false,
                    };
                    self.wal_append(p, &rec, net);
                }
                self.replicas[i].ingest_shard_chain(
                    proc,
                    shard,
                    prev,
                    upto,
                    entries,
                    deps,
                    self.cfg.mode,
                    false,
                );
            }
            Msg::SubAck { shard, subs } => {
                let p = ProcId(to.0);
                // Persist the subscription before any access can depend
                // on it: replay must filter dependency triples with the
                // same interest set the replica had live.
                if self.replicas[i].shard_subscribe(shard as usize) && self.cfg.durability.is_some()
                {
                    let rec = WalRecord::Subscribe { shard };
                    self.wal_append(p, &rec, net);
                    self.wal_sync(p, net);
                }
                for q in subs {
                    self.add_shard_route(to, shard, q);
                }
                // The first-touch request retries via poll_blocked.
            }
            Msg::SubNotify { shard, proc } => {
                // A new subscriber joined: route future updates to it
                // and push our own write suffix for the shard directly,
                // so the join window closes without third-party state.
                // One update per write — an atomic chain can deadlock
                // against another parked chain whose dependency triples
                // point back into this shard.
                self.add_shard_route(to, shard, proc);
                for (writer, loc, payload, prev, deps) in
                    self.replicas[i].shard_updates_after(&[(shard, 0)])
                {
                    let msg = Msg::ShardUpdate { writer, loc, payload, prev, deps };
                    self.send(net, to, Self::proc_node(proc), msg);
                }
            }
            Msg::ShardRecoverReq { proc: reborn, incarnation, applied } => {
                debug_assert_eq!(Self::proc_node(reborn), from, "requests come from the reborn");
                let handled = self.recover_seen.entry((to, reborn)).or_insert(0);
                if incarnation <= *handled {
                    return;
                }
                *handled = incarnation;
                let p = ProcId(to.0);
                // Buffered shard batches are already in our durable own
                // chains; flush so the recovery delta covers them.
                self.flush_updates(p, net);
                // Reset the session link toward the reborn node,
                // dropping sharded update-class payloads: their content
                // travels in the per-shard answers below.
                if let Some(s) = &mut self.session {
                    let wire = s.reset_sender_with(to, from, |m| {
                        !matches!(
                            m,
                            Msg::ShardUpdate { .. }
                                | Msg::ShardUpdateBatch { .. }
                                | Msg::ShardRecoverResp { .. }
                        )
                    });
                    let resend = !wire.is_empty();
                    for m in wire {
                        net.send(to, from, "retransmit", m.wire_bytes(), m);
                    }
                    if resend {
                        let tx = s.sender(to, from);
                        if !tx.timer_armed {
                            tx.timer_armed = true;
                            let rto = tx.rto();
                            net.set_timer(to, rto, session::link_token(to, from));
                        }
                    }
                }
                // Answer once per shard we share. The triples' shard ids
                // double as the reborn's subscription set (zeros kept),
                // so this also re-learns a dynamic subscriber's routes.
                // Each answer carries only the watermark metadata (the
                // push-back trigger); the write suffix itself follows as
                // individual ShardUpdates interleaved across shards in
                // global sequence order — per-shard atomic chains with
                // mutual cross-shard triples would park against each
                // other forever on a reborn replica that lost both.
                let mut shards: Vec<u32> = applied.iter().map(|&(s, _, _)| s).collect();
                shards.dedup();
                let mut wants = Vec::new();
                for s in shards {
                    if !self.replicas[i].shards().expect("sharded").subscribed(s as usize) {
                        continue;
                    }
                    self.add_shard_route(to, s, reborn);
                    let after = applied
                        .iter()
                        .find(|&&(ds, q, _)| ds == s && q == p)
                        .map_or(0, |&(_, _, c)| c);
                    let seen =
                        self.replicas[i].shards().expect("sharded").applied(s as usize).get(reborn);
                    let msg = Msg::ShardRecoverResp {
                        proc: p,
                        shard: s,
                        prev: after,
                        upto: after,
                        entries: Vec::new(),
                        deps: Vec::new(),
                        seen,
                    };
                    self.send(net, to, from, msg);
                    wants.push((s, after));
                }
                for (writer, loc, payload, prev, deps) in
                    self.replicas[i].shard_updates_after(&wants)
                {
                    let msg = Msg::ShardUpdate { writer, loc, payload, prev, deps };
                    self.send(net, to, from, msg);
                }
            }
            Msg::ShardRecoverResp { proc, shard, prev, upto, entries, deps, seen } => {
                let p = ProcId(to.0);
                // The responder subscribes to the shard, or it would not
                // answer for it — merge the route (recovery re-learning,
                // and the join-backfill path where it is already known).
                self.add_shard_route(to, shard, proc);
                let have =
                    self.replicas[i].shards().expect("sharded").applied(shard as usize).get(proc);
                if upto > have {
                    if self.cfg.durability.is_some() {
                        let rec = WalRecord::IngestShardChain {
                            proc,
                            shard,
                            prev,
                            upto,
                            entries: entries.clone(),
                            deps: deps.clone(),
                            trim: true,
                        };
                        self.wal_append(p, &rec, net);
                    }
                    self.replicas[i].ingest_shard_chain(
                        proc,
                        shard,
                        prev,
                        upto,
                        entries.into(),
                        deps,
                        self.cfg.mode,
                        true,
                    );
                }
                // Push back our own suffix the responder has not seen,
                // one update per write for the same acyclicity reason
                // as the recovery answers themselves.
                for (writer, loc, payload, prev, deps) in
                    self.replicas[i].shard_updates_after(&[(shard, seen)])
                {
                    let msg = Msg::ShardUpdate { writer, loc, payload, prev, deps };
                    self.send(net, to, Self::proc_node(proc), msg);
                }
            }
            other => {
                let _ = from;
                panic!("replica received unexpected {other:?}")
            }
        }
    }

    fn poll_blocked_inner(&mut self, proc: ProcToken, net: &mut NetCtx<'_, Msg>) -> Option<Resp> {
        let p = ProcId(proc.0);
        let i = p.index();
        let blocked = self.blocked[i].clone()?;
        let resp = match blocked {
            Blocked::Read { loc, label } => self.read_ready(p, loc, label, net),
            Blocked::Await { loc, value } => self.await_ready(p, loc, value, net),
            Blocked::Sc => self.sc_resp[i].take(),
            Blocked::Lock { lock, mode } => {
                let grant_ready = match self.granted[i].get(&lock) {
                    None => false,
                    // In SC mode the data lives at the server; grants
                    // never gate on replica state.
                    Some(_) if !self.cfg.mode.is_replicated() => true,
                    Some(g) => match self.cfg.lock_propagation {
                        LockPropagation::Eager | LockPropagation::DemandDriven => true,
                        LockPropagation::Lazy => {
                            let r = &self.replicas[i];
                            if g.knowledge.is_empty() {
                                g.preds.iter().all(|&(q, c)| r.applied[q] >= c)
                            } else {
                                r.applied.dominates(&g.knowledge)
                            }
                        }
                    },
                };
                if grant_ready {
                    let g = self.granted[i].remove(&lock).expect("checked");
                    if self.cfg.lock_propagation == LockPropagation::DemandDriven {
                        self.replicas[i].absorb_demand(&g.demand);
                    } else {
                        self.replicas[i].absorb_sync(&g.knowledge, &g.preds);
                    }
                    self.held[i].insert(lock, mode);
                    Some(Resp::Done)
                } else {
                    None
                }
            }
            Blocked::UnlockFlush { lock } => {
                if self.flush_acks[i] == self.cfg.nprocs - 1 {
                    self.flush_acks[i] = 0;
                    self.finish_release(p, lock, net);
                    Some(Resp::Done)
                } else {
                    None
                }
            }
            Blocked::Barrier { barrier, round } => {
                match self.barrier_released[i].remove(&(barrier, round)) {
                    None => None,
                    Some(k) => {
                        let r = &mut self.replicas[i];
                        if !k.is_empty() {
                            if self.cfg.mode.carries_vectors() {
                                r.must_see.merge(&k);
                            }
                            r.pram_wait.merge(&k);
                        }
                        Some(Resp::BarrierPassed { round })
                    }
                }
            }
            Blocked::Subscribe { shard, retry } => {
                let subbed =
                    self.replicas[i].shards().is_some_and(|st| st.subscribed(shard as usize));
                if !subbed {
                    None
                } else {
                    // Subscribed: retry the stashed first-touch request.
                    // The retry may park again on its own account (an
                    // await, a not-yet-ready read) — it cannot re-enter
                    // the subscribe gate for this shard.
                    self.blocked[i] = None;
                    match *retry {
                        Req::Read { loc, label } => {
                            let label = self.effective_label(p, label);
                            match self.read_ready(p, loc, label, net) {
                                Some(r) => Some(r),
                                None => {
                                    self.blocked[i] = Some(Blocked::Read { loc, label });
                                    None
                                }
                            }
                        }
                        Req::Write { loc, value } => {
                            match self.do_write(
                                p,
                                Self::proc_node(p),
                                loc,
                                UpdatePayload::Set(value),
                                net,
                            ) {
                                Poll::Ready(r) => Some(r),
                                Poll::Pending => None,
                            }
                        }
                        Req::Update { loc, delta } => {
                            match self.do_write(
                                p,
                                Self::proc_node(p),
                                loc,
                                UpdatePayload::Add(delta),
                                net,
                            ) {
                                Poll::Ready(r) => Some(r),
                                Poll::Pending => None,
                            }
                        }
                        Req::Await { loc, value } => match self.await_ready(p, loc, value, net) {
                            Some(r) => Some(r),
                            None => {
                                self.flush_updates(p, net);
                                self.blocked[i] = Some(Blocked::Await { loc, value });
                                None
                            }
                        },
                        other => unreachable!("subscribe gate stashed {other:?}"),
                    }
                }
            }
        };
        if resp.is_some() {
            self.blocked[i] = None;
        }
        resp
    }
}

impl Dsm {
    fn do_write(
        &mut self,
        p: ProcId,
        node: NodeId,
        loc: Loc,
        payload: UpdatePayload,
        net: &mut NetCtx<'_, Msg>,
    ) -> Poll<Resp> {
        if self.cfg.mode == Mode::Sc {
            let r = &mut self.replicas[p.index()];
            r.applied.tick(p);
            let id = WriteId::new(p, r.applied[p]);
            self.sc_pending_write[p.index()] = Some(id);
            self.send(net, node, self.manager_node(), Msg::ScWrite { writer: id, loc, payload });
            self.blocked[p.index()] = Some(Blocked::Sc);
            return Poll::Pending;
        }
        if self.sharded() {
            let req = match payload {
                UpdatePayload::Set(value) => Req::Write { loc, value },
                UpdatePayload::Add(delta) => Req::Update { loc, delta },
            };
            if !self.shard_gate(p, node, loc, &req, net) {
                return Poll::Pending;
            }
            return self.do_sharded_write(p, loc, payload, net);
        }
        let (id, deps) = self.replicas[p.index()].local_write(loc, payload.clone(), &self.cfg);
        if let Some(policy) = self.cfg.durability {
            // Append-before-ack: the write's log record is staged
            // before `Wrote` reaches the program. Per-write policies
            // fsync here; group commit defers to the next outgoing
            // message ([`Dsm::send`]) or observation
            // ([`Dsm::observe_sync`]), amortizing one sync over every
            // record staged since the last.
            let rec = WalRecord::OwnWrite { loc, payload: payload.clone(), deps: deps.clone() };
            self.wal_append(p, &rec, net);
            if !policy.group_commit {
                self.wal_sync(p, net);
            }
            self.maybe_snapshot(p, net);
        }
        if self.cfg.batch.is_some() {
            self.buffer_write(p, loc, payload, id, deps, net);
        } else {
            let msg = Msg::Update { writer: id, loc, payload, deps };
            self.broadcast_update(net, p, msg);
        }
        // The local apply may satisfy pending flush probes.
        self.drain_flush_waiters(node, net);
        Poll::Ready(Resp::Wrote { id })
    }

    /// The sharded write path: mint through the per-shard chain, log,
    /// and multicast (or buffer) to the shard's subscribers only.
    fn do_sharded_write(
        &mut self,
        p: ProcId,
        loc: Loc,
        payload: UpdatePayload,
        net: &mut NetCtx<'_, Msg>,
    ) -> Poll<Resp> {
        let (id, prev, deps) =
            self.replicas[p.index()].sharded_write(loc, payload.clone(), &self.cfg);
        if let Some(policy) = self.cfg.durability {
            let rec =
                WalRecord::OwnWriteSharded { loc, payload: payload.clone(), deps: deps.clone() };
            self.wal_append(p, &rec, net);
            if !policy.group_commit {
                self.wal_sync(p, net);
            }
        }
        if self.cfg.batch.is_some() {
            self.buffer_shard_write(p, loc, payload, id, prev, deps, net);
        } else {
            let shard = self.cfg.sharding.as_ref().expect("sharded").shard_of(loc) as u32;
            let msg = Msg::ShardUpdate { writer: id, loc, payload, prev, deps };
            self.multicast_shard(net, p, shard, msg);
        }
        Poll::Ready(Resp::Wrote { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::{Kernel, SimConfig};
    use std::sync::{Arc, Mutex};

    fn kernel(mode: Mode, nprocs: usize) -> Kernel<Dsm> {
        kernel_cfg(DsmConfig::new(nprocs, mode), 1)
    }

    fn kernel_cfg(cfg: DsmConfig, seed: u64) -> Kernel<Dsm> {
        let nnodes = cfg.nnodes();
        Kernel::new(Dsm::new(cfg), nnodes, SimConfig::with_seed(seed))
    }

    fn read(ctx: &mut mc_sim::ProcCtx<Dsm>, loc: u32, label: ReadLabel) -> Value {
        match ctx.request(Req::Read { loc: Loc(loc), label }) {
            Resp::Value { value, .. } => value,
            other => panic!("{other:?}"),
        }
    }

    fn write(ctx: &mut mc_sim::ProcCtx<Dsm>, loc: u32, v: i64) {
        match ctx.request(Req::Write { loc: Loc(loc), value: Value::Int(v) }) {
            Resp::Wrote { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    fn barrier(ctx: &mut mc_sim::ProcCtx<Dsm>) {
        ctx.request(Req::Barrier { barrier: BarrierId(0) });
    }

    #[test]
    fn sharded_producer_consumer_await() {
        use crate::config::ShardConfig;
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            // Locs 0 and 1 land in shards 0 and 1; both procs subscribe
            // to both, the third proc to neither.
            let sc = ShardConfig::new(2, vec![vec![0, 1], vec![0, 1], vec![]]);
            let cfg = DsmConfig::new(3, mode).with_sharding(Some(sc));
            let mut k = kernel_cfg(cfg, 11);
            let seen = Arc::new(Mutex::new(Value::Int(-1)));
            let seen2 = seen.clone();
            k.spawn(NodeId(0), |ctx| {
                write(ctx, 0, 42);
                write(ctx, 1, 1);
            });
            k.spawn(NodeId(1), move |ctx| {
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
                *seen2.lock().unwrap() = read(ctx, 0, ReadLabel::Causal);
            });
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*seen.lock().unwrap(), Value::Int(42), "{mode}");
            // The uninterested third replica received nothing.
            assert!(report.metrics.messages > 0);
        }
    }

    #[test]
    fn sharded_updates_reach_only_subscribers() {
        let sc = crate::config::ShardConfig::new(2, vec![vec![0], vec![0], vec![1]]);
        let cfg = DsmConfig::new(3, Mode::Causal).with_sharding(Some(sc));
        let mut k = kernel_cfg(cfg, 3);
        k.spawn(NodeId(0), |ctx| {
            write(ctx, 0, 7); // shard 0: subscriber set {p0, p1}
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::Await { loc: Loc(0), value: Value::Int(7) });
        });
        k.spawn(NodeId(2), |_ctx| {});
        let report = k.run().unwrap();
        let dsm = &report.protocol;
        assert_eq!(dsm.replica(ProcId(1)).value(Loc(0)), Value::Int(7));
        // p2 subscribes only to shard 1: the write never reached it.
        assert_eq!(dsm.replica(ProcId(2)).value(Loc(0)), Value::INITIAL);
        assert_eq!(dsm.replica(ProcId(2)).applied[ProcId(0)], 0);
    }

    #[test]
    fn dynamic_subscribe_on_first_touch() {
        let sc = crate::config::ShardConfig::new(2, vec![vec![0, 1], vec![0, 1], vec![0]])
            .with_dynamic(true);
        let cfg = DsmConfig::new(3, Mode::Causal).with_sharding(Some(sc));
        let mut k = kernel_cfg(cfg, 5);
        let got = Arc::new(Mutex::new(Value::Int(-1)));
        let got2 = got.clone();
        k.spawn(NodeId(0), |ctx| {
            write(ctx, 1, 9); // shard 1
            write(ctx, 0, 1); // shard 0 flag
        });
        k.spawn(NodeId(1), |_ctx| {});
        k.spawn(NodeId(2), move |ctx| {
            // p2 statically subscribes only to shard 0; the read of loc 1
            // first-touches shard 1, subscribes through the directory,
            // and the backfill push delivers p0's write.
            ctx.request(Req::Await { loc: Loc(0), value: Value::Int(1) });
            ctx.request(Req::Await { loc: Loc(1), value: Value::Int(9) });
            *got2.lock().unwrap() = read(ctx, 1, ReadLabel::Causal);
        });
        let report = k.run().unwrap();
        assert_eq!(*got.lock().unwrap(), Value::Int(9));
        assert!(report.protocol.replica(ProcId(2)).shards().unwrap().subscribed(1));
    }

    #[test]
    fn sharded_batching_coalesces_per_shard() {
        let sc = crate::config::ShardConfig::full(2, 2);
        let cfg = DsmConfig::new(2, Mode::Causal)
            .with_sharding(Some(sc))
            .with_batching(Some(crate::config::BatchPolicy::default()));
        let mut k = kernel_cfg(cfg, 9);
        k.spawn(NodeId(0), |ctx| {
            for i in 0..8 {
                write(ctx, i % 4, i as i64); // shards 0 and 1 interleaved
            }
            write(ctx, 5, 99); // flag in shard 1
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::Await { loc: Loc(5), value: Value::Int(99) });
        });
        let report = k.run().unwrap();
        assert_eq!(report.protocol.replica(ProcId(1)).value(Loc(5)), Value::Int(99));
        let batches = report.metrics.kind("shard_update_batch").count;
        assert!(batches > 0, "sharded batching sends shard_update_batch frames");
    }

    #[test]
    fn producer_consumer_await_all_modes() {
        for mode in Mode::ALL {
            let mut k = kernel(mode, 2);
            let seen = Arc::new(Mutex::new(Value::Int(-1)));
            let seen2 = seen.clone();
            k.spawn(NodeId(0), |ctx| {
                write(ctx, 0, 42); // data
                write(ctx, 1, 1); // flag
            });
            k.spawn(NodeId(1), move |ctx| {
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
                *seen2.lock().unwrap() = read(ctx, 0, ReadLabel::Pram);
            });
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*seen.lock().unwrap(), Value::Int(42), "{mode}");
            assert!(report.metrics.messages > 0);
        }
    }

    #[test]
    fn barrier_phases_visible_all_modes() {
        for mode in Mode::ALL {
            let mut k = kernel(mode, 3);
            let sums = Arc::new(Mutex::new(vec![0i64; 3]));
            for i in 0..3u32 {
                let sums = sums.clone();
                k.spawn(NodeId(i), move |ctx| {
                    write(ctx, i, i as i64 + 1);
                    barrier(ctx);
                    let mut s = 0;
                    for j in 0..3 {
                        s += read(ctx, j, ReadLabel::Pram).expect_i64();
                    }
                    sums.lock().unwrap()[i as usize] = s;
                });
            }
            k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*sums.lock().unwrap(), vec![6, 6, 6], "{mode}");
        }
    }

    #[test]
    fn lock_mutual_exclusion_and_data_transfer() {
        for mode in Mode::ALL {
            for prop in LockPropagation::ALL {
                let cfg = DsmConfig::new(3, mode).with_lock_propagation(prop);
                let mut k = kernel_cfg(cfg, 7);
                let total = Arc::new(Mutex::new(0i64));
                for i in 0..3u32 {
                    let total = total.clone();
                    k.spawn(NodeId(i), move |ctx| {
                        for _ in 0..5 {
                            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
                            let v = read(ctx, 0, ReadLabel::Causal).expect_i64();
                            write(ctx, 0, v + 1);
                            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
                        }
                        if i == 0 {
                            *total.lock().unwrap() = 1; // reached
                        }
                    });
                }
                let report = k.run().unwrap_or_else(|e| panic!("{mode}/{prop}: {e}"));
                // The run ends only after all deliveries drain, so every
                // replica has converged: 3 processes x 5 increments = 15.
                if mode.is_replicated() {
                    let dsm = &report.protocol;
                    for i in 0..3 {
                        assert_eq!(
                            dsm.replica(ProcId(i)).peek(Loc(0)),
                            Value::Int(15),
                            "{mode}/{prop} replica {i}"
                        );
                    }
                }
                assert_eq!(*total.lock().unwrap(), 1);
            }
        }
    }

    #[test]
    fn counter_increments_converge() {
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let mut k = kernel(mode, 3);
            let finals = Arc::new(Mutex::new(vec![0i64; 3]));
            for i in 0..3u32 {
                let finals = finals.clone();
                k.spawn(NodeId(i), move |ctx| {
                    for _ in 0..4 {
                        ctx.request(Req::Update { loc: Loc(0), delta: Value::Int(-1) });
                    }
                    ctx.request(Req::Await { loc: Loc(0), value: Value::Int(-12) });
                    finals.lock().unwrap()[i as usize] = read(ctx, 0, ReadLabel::Pram).expect_i64();
                });
            }
            k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*finals.lock().unwrap(), vec![-12, -12, -12], "{mode}");
        }
    }

    #[test]
    fn sc_reads_are_serialized_at_server() {
        let mut k = kernel(Mode::Sc, 2);
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        k.spawn(NodeId(0), |ctx| {
            write(ctx, 0, 1);
        });
        k.spawn(NodeId(1), move |ctx| {
            // Spin until we see the write; every read is a server RPC.
            loop {
                if read(ctx, 0, ReadLabel::Causal) == Value::Int(1) {
                    break;
                }
            }
            *ok2.lock().unwrap() = true;
        });
        let report = k.run().unwrap();
        assert!(*ok.lock().unwrap());
        assert!(report.metrics.kind("sc_read").count >= 1);
        assert_eq!(report.metrics.kind("update").count, 0, "no broadcasts in SC");
    }

    #[test]
    fn mixed_mode_pram_read_does_not_wait_for_causal_cut() {
        // p1 acquires a lock whose grant demands p0's write; a PRAM read
        // of an unrelated location returns immediately even before the
        // update arrives, while a causal read would have to wait. We
        // verify via message counts that no deadlock occurs and both
        // reads complete.
        let mut k = kernel(Mode::Mixed, 2);
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 0, 5);
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 9, 1); // ready flag: forces p1's CS after p0's
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::Await { loc: Loc(9), value: Value::Int(1) });
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            // Causal read inside the CS must see the predecessor's write.
            assert_eq!(read(ctx, 0, ReadLabel::Causal), Value::Int(5));
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
        });
        k.run().unwrap();
    }

    #[test]
    fn eager_unlock_flushes_before_release() {
        let cfg = DsmConfig::new(3, Mode::Mixed).with_lock_propagation(LockPropagation::Eager);
        let mut k = kernel_cfg(cfg, 1);
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 0, 9);
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 9, 1); // ready flag
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::Await { loc: Loc(9), value: Value::Int(1) });
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            assert_eq!(read(ctx, 0, ReadLabel::Causal), Value::Int(9));
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
        });
        let report = k.run().unwrap();
        assert_eq!(report.metrics.kind("flush").count, 4, "2 unlocks x 2 peers");
        assert_eq!(report.metrics.kind("flush_ack").count, 4);
    }

    #[test]
    fn lazy_vs_eager_message_counts() {
        let run = |prop: LockPropagation| {
            let cfg = DsmConfig::new(4, Mode::Mixed).with_lock_propagation(prop);
            let mut k = kernel_cfg(cfg, 3);
            for i in 0..4u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for _ in 0..3 {
                        ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
                        write(ctx, 0, i as i64);
                        ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
                    }
                });
            }
            k.run().unwrap().metrics
        };
        let eager = run(LockPropagation::Eager);
        let lazy = run(LockPropagation::Lazy);
        assert!(
            eager.messages > lazy.messages,
            "eager flush traffic exceeds lazy ({} vs {})",
            eager.messages,
            lazy.messages
        );
    }

    #[test]
    fn demand_driven_blocks_only_touched_locations() {
        let cfg =
            DsmConfig::new(2, Mode::Mixed).with_lock_propagation(LockPropagation::DemandDriven);
        let mut k = kernel_cfg(cfg, 1);
        let vals = Arc::new(Mutex::new((0i64, 0i64)));
        let vals2 = vals.clone();
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 0, 7);
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
            write(ctx, 9, 1); // ready flag
        });
        k.spawn(NodeId(1), move |ctx| {
            ctx.request(Req::Await { loc: Loc(9), value: Value::Int(1) });
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            let a = read(ctx, 0, ReadLabel::Pram).expect_i64(); // demanded loc
            let b = read(ctx, 5, ReadLabel::Pram).expect_i64(); // untouched loc
            ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
            *vals2.lock().unwrap() = (a, b);
        });
        k.run().unwrap();
        assert_eq!(*vals.lock().unwrap(), (7, 0));
    }

    fn faulty_sim(seed: u64, faults: mc_sim::FaultPlan) -> SimConfig {
        let mut sim = SimConfig::with_seed(seed);
        sim.faults = faults;
        sim
    }

    #[test]
    fn session_masks_loss_duplication_and_reordering() {
        use mc_sim::{FaultPlan, SimTime};
        let faults =
            FaultPlan::new().drop_rate(0.1).duplicate_rate(0.1).reorder(SimTime::from_micros(40));
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(3, mode).with_reliable(true);
            let nnodes = cfg.nnodes();
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(9, faults.clone()));
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for _ in 0..5 {
                        ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
                        let v = read(ctx, 0, ReadLabel::Causal).expect_i64();
                        write(ctx, 0, v + 1);
                        ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
                    }
                });
            }
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert!(report.metrics.faults.total() > 0, "{mode}: faults were injected");
            assert!(
                report.metrics.kind("retransmit").count > 0,
                "{mode}: losses forced retransmissions"
            );
            assert!(report.metrics.kind("session_ack").count > 0);
            let dsm = &report.protocol;
            assert_eq!(dsm.session().unwrap().total_unacked(), 0, "{mode}: session drained");
            for i in 0..3 {
                let r = dsm.replica(ProcId(i));
                // Every update was eventually delivered exactly once.
                for j in 0..3 {
                    assert_eq!(r.applied[ProcId(j)], 5, "{mode} replica {i} applied all of p{j}");
                }
                // The vector modes additionally order the lock-carried
                // writes causally, so every replica converges to the last
                // one; PRAM only promises per-sender order.
                if mode.carries_vectors() {
                    assert_eq!(
                        r.peek(Loc(0)),
                        Value::Int(15),
                        "{mode} replica {i} converged despite faults"
                    );
                }
            }
        }
    }

    #[test]
    fn loss_without_session_deadlocks() {
        use mc_sim::{FaultPlan, SimError};
        let cfg = DsmConfig::new(2, Mode::Pram);
        let nnodes = cfg.nnodes();
        let mut k =
            Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(1, FaultPlan::new().drop_rate(1.0)));
        k.spawn(NodeId(0), |ctx| {
            write(ctx, 0, 42);
            write(ctx, 1, 1);
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
        });
        match k.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked, vec![ProcToken(1)], "the consumer starves");
            }
            other => panic!("expected deadlock, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn partition_heal_triggers_redelivery() {
        use mc_sim::{FaultPlan, SimTime};
        // Nodes 0 and 1 are cut off from each other for 300µs; the
        // manager (node 2) stays reachable. The producer's updates are
        // retransmitted after the heal and the consumer completes.
        let faults = FaultPlan::new().partition(
            vec![NodeId(0)],
            vec![NodeId(1)],
            SimTime::ZERO,
            SimTime::from_micros(300),
        );
        let cfg = DsmConfig::new(2, Mode::Mixed).with_reliable(true);
        let nnodes = cfg.nnodes();
        let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(4, faults));
        k.spawn(NodeId(0), |ctx| {
            write(ctx, 0, 42);
            write(ctx, 1, 1);
        });
        let seen = Arc::new(Mutex::new(Value::Int(-1)));
        let seen2 = seen.clone();
        k.spawn(NodeId(1), move |ctx| {
            ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
            *seen2.lock().unwrap() = read(ctx, 0, ReadLabel::Causal);
        });
        let report = k.run().unwrap();
        assert_eq!(*seen.lock().unwrap(), Value::Int(42));
        assert!(report.metrics.faults.partition_dropped > 0, "the cut bit");
        assert!(report.metrics.kind("retransmit").count > 0, "heal re-delivery");
        assert!(report.metrics.finish_time >= SimTime::from_micros(300));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        use mc_sim::{FaultPlan, SimTime};
        let run = |seed: u64| {
            let faults = FaultPlan::new()
                .drop_rate(0.15)
                .duplicate_rate(0.1)
                .reorder(SimTime::from_micros(30));
            let cfg = DsmConfig::new(3, Mode::Mixed).with_reliable(true);
            let nnodes = cfg.nnodes();
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(seed, faults));
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    write(ctx, i, i as i64);
                    barrier(ctx);
                    let _ = read(ctx, (i + 1) % 3, ReadLabel::Causal);
                });
            }
            let m = k.run().unwrap().metrics;
            (m.faults, m.messages, m.events, m.finish_time)
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).0, run(22).0, "different seeds inject differently");
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = |seed| {
            let mut k = kernel_cfg(DsmConfig::new(3, Mode::Mixed), seed);
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    write(ctx, i, 1);
                    barrier(ctx);
                    let _ = read(ctx, (i + 1) % 3, ReadLabel::Causal);
                });
            }
            let m = k.run().unwrap().metrics;
            (m.finish_time, m.messages, m.events, m.bytes)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "re-acquires")]
    fn double_lock_is_a_programming_error() {
        let mut k = kernel(Mode::Mixed, 1);
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
            ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
        });
        // The panic happens on the kernel thread (protocol code).
        let _ = k.run();
    }

    #[test]
    fn batched_writes_converge_and_reduce_traffic() {
        use crate::config::BatchPolicy;
        let run = |batch: Option<BatchPolicy>| {
            let cfg = DsmConfig::new(3, Mode::Causal).with_batching(batch);
            let mut k = kernel_cfg(cfg, 5);
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for j in 0..10 {
                        write(ctx, i, j as i64);
                    }
                    barrier(ctx);
                    let mut s = 0;
                    for q in 0..3 {
                        s += read(ctx, q, ReadLabel::Causal).expect_i64();
                    }
                    assert_eq!(s, 27, "every replica sees the final values");
                });
            }
            let report = k.run().unwrap();
            for i in 0..3 {
                for q in 0..3u32 {
                    assert_eq!(report.protocol.replica(ProcId(i)).peek(Loc(q)), Value::Int(9));
                }
            }
            report.metrics
        };
        let unbatched = run(None);
        let batched = run(Some(BatchPolicy::default()));
        assert_eq!(batched.kind("update").count, 0, "every update rides a batch");
        assert!(batched.kind("update_batch").count > 0);
        assert!(
            batched.messages * 2 <= unbatched.messages,
            "10 same-location writes coalesce: {} vs {}",
            batched.messages,
            unbatched.messages
        );
        assert!(batched.bytes < unbatched.bytes, "{} vs {}", batched.bytes, unbatched.bytes);
    }

    #[test]
    fn flush_timer_delivers_without_synchronization() {
        use crate::config::BatchPolicy;
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(2, mode).with_batching(Some(BatchPolicy::default()));
            let mut k = kernel_cfg(cfg, 1);
            let seen = Arc::new(Mutex::new(Value::Int(-1)));
            let seen2 = seen.clone();
            k.spawn(NodeId(0), |ctx| {
                write(ctx, 0, 42);
                write(ctx, 1, 1); // flag — nothing ever syncs explicitly
            });
            k.spawn(NodeId(1), move |ctx| {
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
                *seen2.lock().unwrap() = read(ctx, 0, ReadLabel::Causal);
            });
            k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*seen.lock().unwrap(), Value::Int(42), "{mode}");
        }
    }

    #[test]
    fn size_limit_forces_intermediate_flushes() {
        use crate::config::BatchPolicy;
        let policy = BatchPolicy { max_updates: 4, max_delay_micros: 10_000 };
        let cfg = DsmConfig::new(2, Mode::Pram).with_batching(Some(policy));
        let mut k = kernel_cfg(cfg, 2);
        k.spawn(NodeId(0), |ctx| {
            for j in 0..8u32 {
                write(ctx, j, 1); // distinct locations: no coalescing
            }
        });
        k.spawn(NodeId(1), |_ctx| {});
        let report = k.run().unwrap();
        assert_eq!(
            report.metrics.kind("update_batch").count,
            2,
            "8 distinct-location writes at max_updates=4 make exactly 2 batches"
        );
        assert_eq!(report.protocol.replica(ProcId(1)).peek(Loc(7)), Value::Int(1));
    }

    #[test]
    fn batched_counters_converge_on_await() {
        use crate::config::BatchPolicy;
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(3, mode).with_batching(Some(BatchPolicy::default()));
            let mut k = kernel_cfg(cfg, 3);
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for _ in 0..4 {
                        ctx.request(Req::Update { loc: Loc(0), delta: Value::Int(-1) });
                    }
                    match ctx.request(Req::Await { loc: Loc(0), value: Value::Int(-12) }) {
                        Resp::Awaited { writers, .. } => {
                            assert_eq!(writers.len(), 12, "every member write is credited")
                        }
                        other => panic!("{other:?}"),
                    }
                });
            }
            k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }

    #[test]
    fn batched_session_masks_faults_with_piggybacked_acks() {
        use crate::config::BatchPolicy;
        use mc_sim::{FaultPlan, SimTime};
        let faults =
            FaultPlan::new().drop_rate(0.1).duplicate_rate(0.1).reorder(SimTime::from_micros(40));
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(3, mode)
                .with_reliable(true)
                .with_batching(Some(BatchPolicy::default()));
            let nnodes = cfg.nnodes();
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(9, faults.clone()));
            for i in 0..3u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for _ in 0..5 {
                        ctx.request(Req::Lock { lock: LockId(0), mode: LockMode::Write });
                        let v = read(ctx, 0, ReadLabel::Causal).expect_i64();
                        write(ctx, 0, v + 1);
                        ctx.request(Req::Unlock { lock: LockId(0), mode: LockMode::Write });
                    }
                });
            }
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert!(report.metrics.faults.total() > 0, "{mode}: faults were injected");
            let dsm = &report.protocol;
            assert_eq!(dsm.session().unwrap().total_unacked(), 0, "{mode}: session drained");
            for i in 0..3 {
                let r = dsm.replica(ProcId(i));
                for j in 0..3 {
                    assert_eq!(r.applied[ProcId(j)], 5, "{mode} replica {i} applied all of p{j}");
                }
                if mode.carries_vectors() {
                    assert_eq!(r.peek(Loc(0)), Value::Int(15), "{mode} replica {i} converged");
                }
            }
        }
    }

    #[test]
    fn durable_crash_recover_refetches_missing_delta() {
        use crate::durability::DurabilityPolicy;
        use mc_sim::{FaultPlan, SimTime};
        // p0 produces, p1 crash-recovers mid-stream, p2 is a bystander.
        // The reborn replica must re-earn everything it lost from disk
        // plus the peers' recovery deltas, and still converge.
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(3, mode)
                .with_reliable(true)
                .with_durability(Some(DurabilityPolicy::new(4)));
            let nnodes = cfg.nnodes();
            let faults = FaultPlan::new().crash_recover(NodeId(1), SimTime::from_micros(30));
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(7, faults));
            k.spawn(NodeId(0), |ctx| {
                for v in 1..=10 {
                    write(ctx, 0, v);
                }
                write(ctx, 1, 1); // flag
            });
            k.spawn(NodeId(1), |ctx| {
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
            });
            k.spawn(NodeId(2), |ctx| {
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
            });
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(report.metrics.wal.recoveries, 1, "{mode}");
            assert!(report.metrics.wal.appends > 0, "{mode}: writes hit the log");
            assert!(report.metrics.wal.snapshots > 0, "{mode}: compaction ran");
            let dsm = &report.protocol;
            for i in 0..3 {
                let r = dsm.replica(ProcId(i));
                assert_eq!(r.peek(Loc(0)), Value::Int(10), "{mode} replica {i} converged");
                assert_eq!(r.applied[ProcId(0)], 11, "{mode} replica {i} applied all of p0");
            }
            assert!(dsm.replica(ProcId(1)).incarnation >= 1, "{mode}: incarnation bumped");
        }
    }

    #[test]
    fn acked_writes_survive_own_crash() {
        use crate::durability::DurabilityPolicy;
        use mc_sim::{FaultPlan, SimTime};
        // The *writer* crashes after its writes were acknowledged to the
        // program. Append-before-ack means they are on disk; recovery
        // replays them and pushes the suffix to peers that missed it.
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(2, mode)
                .with_reliable(true)
                .with_durability(Some(DurabilityPolicy::default()));
            let nnodes = cfg.nnodes();
            let faults = FaultPlan::new().crash_recover(NodeId(0), SimTime::from_micros(20));
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(3, faults));
            k.spawn(NodeId(0), |ctx| {
                for v in 1..=5 {
                    write(ctx, 0, v);
                }
            });
            k.spawn(NodeId(1), |ctx| {
                ctx.request(Req::Await { loc: Loc(0), value: Value::Int(5) });
            });
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(report.metrics.wal.recoveries, 1, "{mode}");
            let dsm = &report.protocol;
            for i in 0..2 {
                let r = dsm.replica(ProcId(i));
                assert_eq!(r.peek(Loc(0)), Value::Int(5), "{mode} replica {i} has the value");
                assert_eq!(r.applied[ProcId(0)], 5, "{mode} replica {i}: no acked write lost");
            }
            assert_eq!(dsm.replica(ProcId(0)).own_updates_len(), 5, "{mode}: history durable");
        }
    }

    #[test]
    fn stale_epoch_traffic_cannot_corrupt_reborn_node() {
        use crate::durability::DurabilityPolicy;
        use mc_sim::{FaultPlan, SimTime};
        // Chaos on top of a crash-recover: drops, duplicates, and
        // reordering race pre-crash ghosts against the fresh epoch. The
        // epoch tags and recovery dup guards must keep counters exact
        // (commutative Adds double-applied would show up immediately).
        for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
            let cfg = DsmConfig::new(2, mode)
                .with_reliable(true)
                .with_durability(Some(DurabilityPolicy::new(8)));
            let nnodes = cfg.nnodes();
            let faults = FaultPlan::new()
                .drop_rate(0.1)
                .duplicate_rate(0.15)
                .reorder(SimTime::from_micros(25))
                .crash_recover(NodeId(1), SimTime::from_micros(40));
            let mut k = Kernel::new(Dsm::new(cfg), nnodes, faulty_sim(11, faults));
            k.spawn(NodeId(0), |ctx| {
                for _ in 0..8 {
                    ctx.request(Req::Update { loc: Loc(0), delta: Value::Int(1) });
                }
                write(ctx, 1, 1);
            });
            k.spawn(NodeId(1), move |ctx| {
                for _ in 0..8 {
                    ctx.request(Req::Update { loc: Loc(0), delta: Value::Int(1) });
                }
                ctx.request(Req::Await { loc: Loc(1), value: Value::Int(1) });
            });
            let report = k.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(report.metrics.wal.recoveries, 1, "{mode}");
            let dsm = &report.protocol;
            for i in 0..2 {
                let r = dsm.replica(ProcId(i));
                assert_eq!(
                    r.peek(Loc(0)),
                    Value::Int(16),
                    "{mode} replica {i}: counter exact despite ghosts"
                );
            }
        }
    }

    #[test]
    fn vector_bytes_larger_in_causal_than_pram() {
        let run = |mode| {
            let mut k = kernel(mode, 4);
            for i in 0..4u32 {
                k.spawn(NodeId(i), move |ctx| {
                    for j in 0..5 {
                        write(ctx, i * 8 + j, 1);
                    }
                });
            }
            k.run().unwrap().metrics
        };
        let pram = run(Mode::Pram);
        let causal = run(Mode::Causal);
        assert_eq!(pram.kind("update").count, causal.kind("update").count);
        assert!(causal.kind("update").bytes > pram.kind("update").bytes);
    }
}
