//! Protocol configuration: memory mode and lock-propagation variants.

use std::fmt;

/// Which memory consistency protocol the DSM runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// Pipelined RAM (Lipton–Sandberg): full replication, FIFO update
    /// broadcast, apply-on-receipt, local reads. No vector timestamps on
    /// the wire (Section 6: the overhead "can be avoided" for PRAM).
    Pram,
    /// Causal memory (Ahamad et al.): updates carry vector timestamps and
    /// are applied in causal order; every read is causal.
    Causal,
    /// Mixed consistency: the causal substrate with per-read labels —
    /// causal reads wait for the reader's causal cut, PRAM reads return
    /// the most recent local value immediately (Section 6).
    Mixed,
    /// Sequentially consistent baseline: a central memory server; every
    /// read and write is a blocking RPC. This is the high-latency
    /// comparison point of the paper's introduction.
    Sc,
}

impl Mode {
    /// All modes, for sweeps.
    pub const ALL: [Mode; 4] = [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc];

    /// Returns `true` for the fully replicated (non-server) modes.
    pub fn is_replicated(self) -> bool {
        !matches!(self, Mode::Sc)
    }

    /// Returns `true` if update messages carry vector timestamps.
    pub fn carries_vectors(self) -> bool {
        matches!(self, Mode::Causal | Mode::Mixed)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Pram => write!(f, "pram"),
            Mode::Causal => write!(f, "causal"),
            Mode::Mixed => write!(f, "mixed"),
            Mode::Sc => write!(f, "sc"),
        }
    }
}

/// When critical-section updates are propagated to the next lock holder
/// (Section 6's three implementations of lock/unlock).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockPropagation {
    /// *Eager*: the releaser broadcasts a flush and collects
    /// acknowledgements before the lock is released; the grantee never
    /// stalls on data.
    Eager,
    /// *Lazy*: the release carries the releaser's knowledge vector; the
    /// grant completes only once the grantee's replica has applied it.
    Lazy,
    /// *Demand-driven*: the release ships the set of variables written
    /// before it; the grantee's reads of exactly those variables block
    /// until the corresponding updates arrive.
    DemandDriven,
}

impl LockPropagation {
    /// All variants, for sweeps.
    pub const ALL: [LockPropagation; 3] =
        [LockPropagation::Eager, LockPropagation::Lazy, LockPropagation::DemandDriven];
}

impl fmt::Display for LockPropagation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockPropagation::Eager => write!(f, "eager"),
            LockPropagation::Lazy => write!(f, "lazy"),
            LockPropagation::DemandDriven => write!(f, "demand"),
        }
    }
}

/// When buffered updates are force-flushed into an
/// [`UpdateBatch`](crate::Msg::UpdateBatch), beyond the mandatory
/// flush-before-sync points (lock release, barrier arrival, blocking
/// await). Batching exploits the FIFO-channel assumption the protocol
/// already relies on: a batch applied atomically at the receiver is
/// indistinguishable from its member updates delivered back to back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchPolicy {
    /// Flush once this many (coalesced) entries are buffered.
    pub max_updates: usize,
    /// Flush at most this long (virtual time in the simulator, wall
    /// clock in the live executor) after the first buffered update —
    /// the liveness backstop for processes that stop writing without
    /// synchronizing.
    pub max_delay_micros: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_updates: 16, max_delay_micros: 25 }
    }
}

impl BatchPolicy {
    /// A policy with no delay window: updates buffer only until the
    /// next scheduling point (the flush timer is armed at zero delay).
    /// Useful for exploration, where virtual-time windows would hide
    /// interleavings behind the end of the program.
    pub fn immediate() -> Self {
        BatchPolicy { max_delay_micros: 0, ..BatchPolicy::default() }
    }
}

/// Sharded interest-based partial replication: the address space is
/// partitioned into `nshards` shards (`shard(loc) = loc mod nshards`)
/// and every process declares an *interest set* — the shards it
/// subscribes to. Updates multicast only to subscribers, and dependency
/// clocks travel as sparse per-shard entries, so wire clock width is
/// O(interested replicas) instead of O(cluster). This generalizes the
/// paper's Section 6 demand-driven variant from lock-protected data to
/// the whole address space: a replica pulls (subscribes to) exactly the
/// state it touches instead of receiving every write pushed everywhere.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardConfig {
    /// Number of address-space shards.
    pub nshards: usize,
    /// Per-process interest sets: `interest[p]` lists the shards process
    /// `p` subscribes to (sorted and deduplicated by the constructor).
    pub interest: Vec<Vec<usize>>,
    /// Subscribe-on-first-touch fallback: an access to a shard outside
    /// the static interest set blocks while the process subscribes
    /// through the directory, instead of being rejected.
    pub dynamic: bool,
}

impl ShardConfig {
    /// A shard map with explicit per-process interest sets.
    ///
    /// # Panics
    ///
    /// Panics if `nshards` is zero or any interest entry names an
    /// out-of-range shard.
    pub fn new(nshards: usize, interest: Vec<Vec<usize>>) -> Self {
        assert!(nshards >= 1, "at least one shard");
        let interest = interest
            .into_iter()
            .map(|mut set| {
                assert!(
                    set.iter().all(|&s| s < nshards),
                    "interest set names a shard >= nshards ({nshards})"
                );
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect();
        ShardConfig { nshards, interest, dynamic: false }
    }

    /// Every process interested in every shard (full replication
    /// expressed through the sharded machinery; useful as a conformance
    /// baseline).
    pub fn full(nshards: usize, nprocs: usize) -> Self {
        ShardConfig::new(nshards, vec![(0..nshards).collect(); nprocs])
    }

    /// Enables (or disables) the subscribe-on-first-touch fallback.
    pub fn with_dynamic(mut self, dynamic: bool) -> Self {
        self.dynamic = dynamic;
        self
    }

    /// The shard owning `loc`.
    pub fn shard_of(&self, loc: mc_model::Loc) -> usize {
        loc.index() % self.nshards
    }

    /// Whether process `p` statically subscribes to `shard`.
    pub fn subscribed(&self, p: mc_model::ProcId, shard: usize) -> bool {
        self.interest[p.index()].binary_search(&shard).is_ok()
    }
}

/// Configuration of a [`Dsm`](crate::Dsm) instance.
#[derive(Clone, Debug)]
pub struct DsmConfig {
    /// Number of application processes (replica `i` hosts process `i`;
    /// node `nprocs` is the manager/server).
    pub nprocs: usize,
    /// The memory protocol.
    pub mode: Mode,
    /// The lock-propagation variant.
    pub lock_propagation: LockPropagation,
    /// Barrier participant subsets (Section 3.1.2's parenthetical:
    /// "a barrier can also be defined for a subset of processes").
    /// Barrier objects absent from this map involve every process.
    pub barrier_groups: std::collections::HashMap<mc_model::BarrierId, Vec<mc_model::ProcId>>,
    /// Number of manager nodes. Section 6 maps *every lock* and *every
    /// barrier* "to a process"; with more than one shard, objects are
    /// distributed over manager nodes round-robin by id, spreading
    /// synchronization traffic across links.
    pub manager_shards: usize,
    /// Run the reliable-delivery session layer (see [`crate::session`])
    /// under the protocol: per-link sequencing, acknowledgements, and
    /// retransmission. Off by default — the quiet simulated network
    /// already provides FIFO channels; turn it on when a
    /// [`FaultPlan`](mc_sim::FaultPlan) attacks them.
    pub reliable: bool,
    /// Batched/coalesced update propagation. `None` (the default)
    /// broadcasts one [`Msg::Update`](crate::Msg::Update) per write, as
    /// in the paper's Section 6 sketch; `Some` buffers and coalesces
    /// writes per the policy, flushing before every synchronization
    /// message so the `↦lock`/`↦bar` orders of Definitions 2–4 are
    /// preserved by construction.
    pub batch: Option<BatchPolicy>,
    /// Number of shared-memory locations the application uses, used to
    /// pre-size replica stores so the hot read path needs no growth
    /// checks. Accesses beyond this hint still work (the store grows on
    /// the write path).
    pub locations: usize,
    /// Durable crash recovery (see [`crate::durability`]). `None` (the
    /// default) keeps the paper's amnesia crash model; `Some` gives
    /// every replica a write-ahead log with append-before-ack for own
    /// writes plus compacted snapshots per the policy, so a
    /// crash-recover fault rebuilds the replica from disk and fetches
    /// only the missing delta from peers.
    pub durability: Option<crate::durability::DurabilityPolicy>,
    /// Per-process consistency-model assignment (the ordering-property
    /// lattice; see [`mc_model::spec`]). `None` keeps the legacy
    /// behavior where [`DsmConfig::mode`] alone decides how reads are
    /// labeled; `Some` makes `mode` a derived *substrate* (set by
    /// [`DsmConfig::with_models`]) and each process's reads follow its
    /// assigned lattice point.
    pub models: Option<mc_model::ModelAssignment>,
    /// Sharded interest-based partial replication. `None` (the default)
    /// keeps full replication: every write broadcast to every peer.
    /// `Some` routes each update only to the subscribers of its shard
    /// and switches dependency tracking to sparse per-shard clocks.
    /// Only meaningful on the replicated modes (the SC substrate's
    /// central server is untouched); locks and barriers are not yet
    /// supported together with sharding.
    pub sharding: Option<ShardConfig>,
}

impl DsmConfig {
    /// A configuration with the given process count and mode, lazy locks.
    pub fn new(nprocs: usize, mode: Mode) -> Self {
        DsmConfig {
            nprocs,
            mode,
            lock_propagation: LockPropagation::Lazy,
            barrier_groups: std::collections::HashMap::new(),
            manager_shards: 1,
            reliable: false,
            batch: None,
            locations: 64,
            durability: None,
            models: None,
            sharding: None,
        }
    }

    /// Enables (`Some`) or disables (`None`) sharded interest-based
    /// partial replication.
    ///
    /// # Panics
    ///
    /// Panics if the interest table's process count differs from
    /// `nprocs`.
    pub fn with_sharding(mut self, sharding: Option<ShardConfig>) -> Self {
        if let Some(sc) = &sharding {
            assert_eq!(sc.interest.len(), self.nprocs, "one interest set per process");
        }
        self.sharding = sharding;
        self
    }

    /// Assigns a consistency-model lattice point to every process and
    /// derives the protocol substrate that implements the assignment:
    ///
    /// * any total-store-order point (`sc`) requires the central-server
    ///   substrate and must be uniform — replicated points cannot share
    ///   a run with a serialization guarantee;
    /// * any point needing causal knowledge (writes-follow-reads, full
    ///   synchronization visibility, or coherence tags) selects the
    ///   vector-carrying [`Mode::Mixed`] substrate;
    /// * otherwise the plain FIFO [`Mode::Pram`] substrate suffices.
    ///
    /// Reads are then labeled per process by
    /// [`DsmConfig::read_policy`].
    ///
    /// # Panics
    ///
    /// Panics if the assignment's process count differs from `nprocs`,
    /// or if it mixes `sc` with non-`sc` points.
    pub fn with_models(mut self, models: mc_model::ModelAssignment) -> Self {
        assert_eq!(models.len(), self.nprocs, "one model per process");
        self.mode = if models.any_tso() {
            assert!(
                models.all_tso(),
                "a total-store-order point cannot mix with replicated lattice points"
            );
            Mode::Sc
        } else {
            let needs_vectors = models.iter().any(|m| match m {
                mc_model::ProcModel::ByLabel => true,
                mc_model::ProcModel::Fixed(s) => {
                    s.writes_follow_reads || s.coherence || s.sync == mc_model::SyncScope::Full
                }
            });
            if needs_vectors {
                Mode::Mixed
            } else {
                Mode::Pram
            }
        };
        self.models = Some(models);
        self
    }

    /// The effective label of a read issued by `proc` with program label
    /// `label`: under a model assignment, `ByLabel` processes keep their
    /// program labels and `Fixed` processes read causally exactly when
    /// their point includes writes-follow-reads; without one, the legacy
    /// global mode decides.
    pub fn read_policy(
        &self,
        proc: mc_model::ProcId,
        label: mc_model::ReadLabel,
    ) -> mc_model::ReadLabel {
        match &self.models {
            Some(models) => models.judged_as(proc, label),
            None => match self.mode {
                Mode::Pram => mc_model::ReadLabel::Pram,
                Mode::Causal => mc_model::ReadLabel::Causal,
                Mode::Mixed | Mode::Sc => label,
            },
        }
    }

    /// Enables or disables the reliable-delivery session layer.
    pub fn with_reliable(mut self, reliable: bool) -> Self {
        self.reliable = reliable;
        self
    }

    /// Enables (`Some`) or disables (`None`) durable crash recovery.
    pub fn with_durability(mut self, policy: Option<crate::durability::DurabilityPolicy>) -> Self {
        self.durability = policy;
        self
    }

    /// Enables (`Some`) or disables (`None`) batched update propagation.
    pub fn with_batching(mut self, batch: Option<BatchPolicy>) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the store pre-sizing hint.
    pub fn with_locations(mut self, locations: usize) -> Self {
        self.locations = locations;
        self
    }

    /// Distributes lock and barrier managers over `shards` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_manager_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one manager shard");
        self.manager_shards = shards;
        self
    }

    /// Sets the lock-propagation variant.
    pub fn with_lock_propagation(mut self, p: LockPropagation) -> Self {
        self.lock_propagation = p;
        self
    }

    /// Restricts a barrier object to a subset of processes.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty or mentions an unknown process.
    pub fn with_barrier_group(
        mut self,
        barrier: mc_model::BarrierId,
        group: Vec<mc_model::ProcId>,
    ) -> Self {
        assert!(!group.is_empty(), "barrier group must be non-empty");
        assert!(
            group.iter().all(|p| p.index() < self.nprocs),
            "barrier group mentions an unknown process"
        );
        self.barrier_groups.insert(barrier, group);
        self
    }

    /// The participants of a barrier object.
    pub fn barrier_participants(&self, barrier: mc_model::BarrierId) -> Vec<mc_model::ProcId> {
        self.barrier_groups
            .get(&barrier)
            .cloned()
            .unwrap_or_else(|| (0..self.nprocs as u32).map(mc_model::ProcId).collect())
    }

    /// Total network nodes: one replica per process plus the manager
    /// shards.
    pub fn nnodes(&self) -> usize {
        self.nprocs + self.manager_shards
    }

    /// The first manager node (shard 0; also the SC server).
    pub fn manager_node(&self) -> mc_sim::NodeId {
        mc_sim::NodeId(self.nprocs as u32)
    }

    /// The manager node owning lock `lock`.
    pub fn lock_manager_node(&self, lock: mc_model::LockId) -> mc_sim::NodeId {
        mc_sim::NodeId((self.nprocs + lock.index() % self.manager_shards) as u32)
    }

    /// The manager node owning barrier object `barrier`.
    pub fn barrier_manager_node(&self, barrier: mc_model::BarrierId) -> mc_sim::NodeId {
        mc_sim::NodeId((self.nprocs + barrier.index() % self.manager_shards) as u32)
    }

    /// Returns `true` if `node` is a manager shard.
    pub fn is_manager_node(&self, node: mc_sim::NodeId) -> bool {
        node.index() >= self.nprocs && node.index() < self.nnodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(Mode::Pram.is_replicated());
        assert!(!Mode::Sc.is_replicated());
        assert!(Mode::Mixed.carries_vectors());
        assert!(Mode::Causal.carries_vectors());
        assert!(!Mode::Pram.carries_vectors());
        assert_eq!(Mode::ALL.len(), 4);
        assert_eq!(Mode::Mixed.to_string(), "mixed");
        assert_eq!(LockPropagation::Eager.to_string(), "eager");
        assert_eq!(LockPropagation::ALL.len(), 3);
    }

    #[test]
    fn config_layout() {
        let c = DsmConfig::new(4, Mode::Mixed).with_lock_propagation(LockPropagation::DemandDriven);
        assert_eq!(c.nnodes(), 5);
        assert_eq!(c.manager_node(), mc_sim::NodeId(4));
        assert_eq!(c.lock_propagation, LockPropagation::DemandDriven);
    }

    #[test]
    fn shard_config_normalizes_and_maps() {
        let sc = ShardConfig::new(4, vec![vec![2, 0, 2], vec![1, 3]]);
        assert_eq!(sc.interest[0], vec![0, 2], "sorted and deduplicated");
        assert!(sc.subscribed(mc_model::ProcId(0), 2));
        assert!(!sc.subscribed(mc_model::ProcId(0), 1));
        assert_eq!(sc.shard_of(mc_model::Loc(6)), 2);
        let full = ShardConfig::full(3, 2);
        assert!((0..3).all(|s| full.subscribed(mc_model::ProcId(1), s)));
        assert!(!sc.dynamic);
        assert!(sc.with_dynamic(true).dynamic);
        let cfg = DsmConfig::new(2, Mode::Causal).with_sharding(Some(ShardConfig::full(3, 2)));
        assert_eq!(cfg.sharding.as_ref().unwrap().nshards, 3);
    }

    #[test]
    #[should_panic(expected = "one interest set per process")]
    fn sharding_interest_must_cover_every_process() {
        let _ = DsmConfig::new(3, Mode::Causal).with_sharding(Some(ShardConfig::full(2, 2)));
    }

    #[test]
    fn batch_policy_defaults() {
        let c = DsmConfig::new(2, Mode::Causal);
        assert_eq!(c.batch, None, "batching is opt-in");
        let c = c.with_batching(Some(BatchPolicy::default()));
        let p = c.batch.unwrap();
        assert!(p.max_updates > 1);
        assert!(p.max_delay_micros > 0);
        assert_eq!(BatchPolicy::immediate().max_delay_micros, 0);
        assert_eq!(BatchPolicy::immediate().max_updates, p.max_updates);
    }
}
