//! A reliable-delivery session layer restoring the paper's channel
//! assumptions over a faulty network.
//!
//! Section 6 of the paper *assumes* "a message passing system with FIFO
//! communication channels". The simulator's [`FaultPlan`] can drop,
//! duplicate, and reorder messages, partition node sets, and crash nodes
//! — under which the raw protocols are unsound (PRAM's apply-on-receipt
//! regresses, awaits deadlock). This module *earns* the assumption back,
//! the way a real LAN stack would, with a per-directed-link session:
//!
//! * every payload is wrapped in [`Msg::SessData`](crate::Msg::SessData)
//!   carrying a per-link sequence number;
//! * the receiver delivers strictly in sequence order (buffering
//!   out-of-order arrivals, discarding duplicates) and answers with
//!   cumulative [`Msg::SessAck`](crate::Msg::SessAck)s;
//! * the sender keeps unacknowledged payloads and retransmits them on a
//!   timer with exponential backoff, capped at
//!   [`SessionConfig::max_rto`].
//!
//! The state machines here are *pure* (no I/O): [`LinkSender`] and
//! [`LinkReceiver`] compute what to transmit and what to deliver, and the
//! glue in [`Dsm`](crate::Dsm) (simulator timers) or the live executor
//! (wall-clock ticks) performs the sends. The memory protocols above the
//! session — [`Replica`](crate::Replica), [`Manager`](crate::Manager) —
//! are unchanged: they see exactly the FIFO channels the paper assumed.
//!
//! [`FaultPlan`]: mc_sim::FaultPlan

use std::collections::{BTreeMap, HashMap};

use mc_sim::{NodeId, SimTime};

use crate::msg::Msg;

/// Retransmission tuning of the session layer.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Initial retransmission timeout; should exceed one round trip.
    pub initial_rto: SimTime,
    /// Backoff cap: the timeout doubles per expiry up to this bound.
    pub max_rto: SimTime,
}

impl Default for SessionConfig {
    /// 50µs initial timeout (several LAN round trips), 800µs cap.
    fn default() -> Self {
        SessionConfig { initial_rto: SimTime::from_micros(50), max_rto: SimTime::from_micros(800) }
    }
}

/// Encodes the directed link `from → to` as a timer token.
pub fn link_token(from: NodeId, to: NodeId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

/// Decodes a [`link_token`] back into `(from, to)`.
pub fn token_link(token: u64) -> (NodeId, NodeId) {
    (NodeId((token >> 32) as u32), NodeId(token as u32))
}

/// Sender half of one directed link: assigns sequence numbers, tracks
/// unacknowledged payloads, and computes retransmissions.
#[derive(Debug)]
pub struct LinkSender {
    next_seq: u64,
    /// The link epoch this sender transmits in: high 32 bits the
    /// sender's persisted incarnation, low 32 bits a volatile reset
    /// counter. Acks from any other epoch are ignored.
    epoch: u64,
    unacked: BTreeMap<u64, Msg>,
    /// Highest cumulative acknowledgement seen (the watermark deciding
    /// whether an ack is new information).
    acked_upto: u64,
    rto: SimTime,
    /// Whether a retransmission timer is currently scheduled for this
    /// link. Maintained by the glue: timers cannot be cancelled, so a
    /// timer that expires with nothing unacknowledged clears the flag
    /// instead of re-arming.
    pub timer_armed: bool,
}

impl LinkSender {
    /// A fresh sender with the configured initial timeout, transmitting
    /// in epoch `epoch`.
    pub fn new(cfg: &SessionConfig, epoch: u64) -> Self {
        LinkSender {
            next_seq: 0,
            epoch,
            unacked: BTreeMap::new(),
            acked_upto: 0,
            rto: cfg.initial_rto,
            timer_armed: false,
        }
    }

    /// Wraps `inner` as the next in-sequence payload, retaining a copy
    /// for retransmission. Returns the wire message.
    pub fn wrap(&mut self, inner: Msg) -> Msg {
        self.next_seq += 1;
        self.unacked.insert(self.next_seq, inner.clone());
        Msg::SessData { seq: self.next_seq, epoch: self.epoch, inner: Box::new(inner) }
    }

    /// The epoch this sender transmits in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Handles a cumulative acknowledgement: everything up to `upto` is
    /// delivered. Stale and duplicated acks are harmless. An ack from a
    /// different epoch is ignored outright — a cumulative ack earned by
    /// a pre-crash incarnation says nothing about what the reborn link
    /// has delivered. The backoff is reset **only when the cumulative
    /// watermark advances** — a duplicated or reordered copy of an old
    /// ack acknowledges nothing new and must not defeat exponential
    /// backoff under a reorder-heavy fault plan.
    pub fn on_ack(&mut self, upto: u64, epoch: u64, cfg: &SessionConfig) {
        if epoch != self.epoch {
            return;
        }
        self.unacked.retain(|&seq, _| seq > upto);
        if upto > self.acked_upto {
            self.acked_upto = upto;
            self.rto = cfg.initial_rto;
        }
    }

    /// Handles a retransmission-timer expiry: returns every
    /// unacknowledged `(seq, payload)` to put back on the wire and
    /// doubles the timeout (capped). Empty when nothing is outstanding —
    /// the glue then lets the timer lapse.
    pub fn on_timeout(&mut self, cfg: &SessionConfig) -> Vec<(u64, Msg)> {
        if self.unacked.is_empty() {
            return Vec::new();
        }
        let doubled = SimTime::from_nanos(self.rto.as_nanos().saturating_mul(2));
        self.rto = doubled.min(cfg.max_rto);
        self.unacked.iter().map(|(&s, m)| (s, m.clone())).collect()
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimTime {
        self.rto
    }

    /// The highest cumulative acknowledgement received so far.
    pub fn acked_upto(&self) -> u64 {
        self.acked_upto
    }

    /// Whether any payload awaits acknowledgement.
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Number of payloads awaiting acknowledgement.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }
}

/// Receiver half of one directed link: delivers in sequence order,
/// buffers the future, discards the past, and computes cumulative acks.
#[derive(Debug, Default)]
pub struct LinkReceiver {
    delivered: u64,
    /// The highest link epoch seen. Data from a higher epoch resets the
    /// link (the sender was reborn or reset); data from a lower epoch is
    /// a ghost of a dead incarnation and is dropped.
    epoch: u64,
    buffer: BTreeMap<u64, Msg>,
}

impl LinkReceiver {
    /// A fresh receiver expecting sequence number 1 in epoch 0.
    pub fn new() -> Self {
        LinkReceiver::default()
    }

    /// Handles an arriving `SessData { seq, epoch, inner }`. Returns the
    /// payloads now deliverable **in order** plus the cumulative ack to
    /// answer with (always in the receiver's *current* epoch). A
    /// duplicate (or an already-buffered future sequence number)
    /// delivers nothing but still elicits a (re-)ack so the sender's
    /// state catches up even when earlier acks were lost. A higher
    /// epoch resets the link — delivery restarts from sequence 1;
    /// stale-epoch data is ignored entirely.
    pub fn on_data(&mut self, seq: u64, epoch: u64, inner: Msg) -> (Vec<Msg>, u64) {
        if epoch < self.epoch {
            return (Vec::new(), self.delivered);
        }
        if epoch > self.epoch {
            self.epoch = epoch;
            self.delivered = 0;
            self.buffer.clear();
        }
        if seq > self.delivered {
            self.buffer.entry(seq).or_insert(inner);
        }
        let mut ready = Vec::new();
        while let Some(m) = self.buffer.remove(&(self.delivered + 1)) {
            self.delivered += 1;
            ready.push(m);
        }
        (ready, self.delivered)
    }

    /// The highest sequence number delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The current link epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of out-of-order payloads buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }
}

/// Session state for every directed link of one protocol instance.
#[derive(Debug)]
pub struct Session {
    /// Retransmission tuning.
    pub cfg: SessionConfig,
    senders: HashMap<(NodeId, NodeId), LinkSender>,
    receivers: HashMap<(NodeId, NodeId), LinkReceiver>,
    /// Base epoch per sending node: `incarnation << 32`. New and reset
    /// senders of that node never transmit below their base, which
    /// makes link epochs strictly monotone across crashes.
    base_epochs: HashMap<NodeId, u64>,
}

impl Session {
    /// A fresh session over zero links (links materialize on first use).
    pub fn new(cfg: SessionConfig) -> Self {
        Session {
            cfg,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            base_epochs: HashMap::new(),
        }
    }

    /// Installs `node`'s persisted incarnation: senders from `node`
    /// created or reset from now on transmit in epoch
    /// `incarnation << 32` or higher.
    pub fn set_base_epoch(&mut self, node: NodeId, incarnation: u32) {
        self.base_epochs.insert(node, (incarnation as u64) << 32);
    }

    /// The base epoch of `node` (0 when never crashed).
    pub fn base_epoch(&self, node: NodeId) -> u64 {
        self.base_epochs.get(&node).copied().unwrap_or(0)
    }

    /// One-line link-state dump (diagnostics only).
    pub fn debug_links(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for ((f, t), s) in &self.senders {
            let _ = write!(
                out,
                "snd {f}->{t} ep={} next={} unacked={} acked={}; ",
                s.epoch,
                s.next_seq,
                s.unacked.len(),
                s.acked_upto
            );
        }
        for ((f, t), r) in &self.receivers {
            let _ = write!(
                out,
                "rcv {f}->{t} ep={} dlv={} buf={}; ",
                r.epoch,
                r.delivered,
                r.buffer.len()
            );
        }
        out
    }

    /// The sender state of the directed link `from → to`.
    pub fn sender(&mut self, from: NodeId, to: NodeId) -> &mut LinkSender {
        let cfg = self.cfg;
        let base = self.base_epoch(from);
        self.senders.entry((from, to)).or_insert_with(|| LinkSender::new(&cfg, base))
    }

    /// Resets the sender of the directed link `from → to` into a fresh,
    /// strictly higher epoch (at least `from`'s base epoch) and re-wraps
    /// every unacknowledged payload with fresh sequence numbers. Returns
    /// the wire messages to retransmit — called when the *receiving*
    /// node is reborn and its old delivery watermark is void.
    pub fn reset_sender(&mut self, from: NodeId, to: NodeId) -> Vec<Msg> {
        self.reset_sender_with(from, to, |_| true)
    }

    /// [`Session::reset_sender`] with a retention filter: unacknowledged
    /// payloads failing `keep` are dropped instead of re-wrapped. The
    /// recovery glue uses this to drop update-class payloads toward a
    /// reborn node (their content travels in the recovery delta instead,
    /// with fresh dependency vectors) while keeping everything else.
    pub fn reset_sender_with(
        &mut self,
        from: NodeId,
        to: NodeId,
        keep: impl Fn(&Msg) -> bool,
    ) -> Vec<Msg> {
        let cfg = self.cfg;
        let base = self.base_epoch(from);
        let old = self.senders.remove(&(from, to));
        let epoch = match &old {
            Some(s) => (s.epoch + 1).max(base),
            None => base,
        };
        let mut fresh = LinkSender::new(&cfg, epoch);
        let mut wire = Vec::new();
        if let Some(old) = old {
            for (_, inner) in old.unacked {
                if keep(&inner) {
                    wire.push(fresh.wrap(inner));
                }
            }
        }
        self.senders.insert((from, to), fresh);
        wire
    }

    /// Forgets every link touching a reborn node: its outgoing senders
    /// (fresh ones materialize at the node's base epoch) and its
    /// incoming receivers (peers reset their senders toward it, and the
    /// higher epoch would void the old watermark anyway).
    pub fn forget_node_links(&mut self, node: NodeId) {
        self.senders.retain(|&(from, _), _| from != node);
        self.receivers.retain(|&(_, to), _| to != node);
    }

    /// The receiver state of the directed link `from → to`.
    pub fn receiver(&mut self, from: NodeId, to: NodeId) -> &mut LinkReceiver {
        self.receivers.entry((from, to)).or_default()
    }

    /// Total unacknowledged payloads across all links (zero once the
    /// session has fully drained).
    pub fn total_unacked(&self) -> usize {
        self.senders.values().map(|s| s.unacked_len()).sum()
    }

    /// Iterates mutably over every sender link with its `(from, to)`
    /// identity — for glue that retransmits on wall-clock ticks (the live
    /// executor) rather than per-link simulator timers.
    pub fn senders_mut(&mut self) -> impl Iterator<Item = ((NodeId, NodeId), &mut LinkSender)> {
        self.senders.iter_mut().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::{Loc, ProcId, Value, WriteId};

    use crate::msg::UpdatePayload;

    fn payload(v: i64) -> Msg {
        Msg::Update {
            writer: WriteId::new(ProcId(0), v as u32),
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(v)),
            deps: None,
        }
    }

    fn val(m: &Msg) -> i64 {
        match m {
            Msg::Update { payload: UpdatePayload::Set(Value::Int(v)), .. } => *v,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_order_delivery_is_immediate() {
        let cfg = SessionConfig::default();
        let mut tx = LinkSender::new(&cfg, 0);
        let mut rx = LinkReceiver::new();
        for i in 1..=3 {
            let Msg::SessData { seq, epoch, inner } = tx.wrap(payload(i)) else { panic!() };
            let (ready, upto) = rx.on_data(seq, epoch, *inner);
            assert_eq!(ready.len(), 1);
            assert_eq!(val(&ready[0]), i);
            assert_eq!(upto, i as u64);
            tx.on_ack(upto, 0, &cfg);
        }
        assert!(!tx.has_unacked());
    }

    #[test]
    fn out_of_order_is_buffered_then_released_in_order() {
        let mut rx = LinkReceiver::new();
        let (ready, upto) = rx.on_data(3, 0, payload(3));
        assert!(ready.is_empty());
        assert_eq!(upto, 0, "nothing deliverable yet");
        assert_eq!(rx.buffered_len(), 1);
        let (ready, upto) = rx.on_data(1, 0, payload(1));
        assert_eq!(ready.iter().map(val).collect::<Vec<_>>(), vec![1]);
        assert_eq!(upto, 1);
        let (ready, upto) = rx.on_data(2, 0, payload(2));
        assert_eq!(ready.iter().map(val).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(upto, 3);
        assert_eq!(rx.buffered_len(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_but_reacked() {
        let mut rx = LinkReceiver::new();
        let (ready, _) = rx.on_data(1, 0, payload(1));
        assert_eq!(ready.len(), 1);
        // The same sequence number again: no delivery, but a re-ack that
        // lets the sender recover from a lost ack.
        let (ready, upto) = rx.on_data(1, 0, payload(1));
        assert!(ready.is_empty());
        assert_eq!(upto, 1);
        // A duplicated *future* message is buffered only once.
        rx.on_data(3, 0, payload(3));
        rx.on_data(3, 0, payload(3));
        assert_eq!(rx.buffered_len(), 1);
        let (ready, _) = rx.on_data(2, 0, payload(2));
        assert_eq!(ready.iter().map(val).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn lost_message_is_retransmitted_until_acked() {
        let cfg = SessionConfig::default();
        let mut tx = LinkSender::new(&cfg, 0);
        let mut rx = LinkReceiver::new();
        let _lost = tx.wrap(payload(1)); // never arrives
        assert!(tx.has_unacked());
        // First expiry: retransmit, backoff doubles.
        let rexmit = tx.on_timeout(&cfg);
        assert_eq!(rexmit.len(), 1);
        assert_eq!(tx.rto(), SimTime::from_micros(100));
        // The retransmission (also lost); second expiry doubles again.
        let rexmit = tx.on_timeout(&cfg);
        assert_eq!(rexmit.len(), 1);
        assert_eq!(tx.rto(), SimTime::from_micros(200));
        // Third copy arrives.
        let (seq, m) = rexmit.into_iter().next().unwrap();
        let (ready, upto) = rx.on_data(seq, 0, m);
        assert_eq!(ready.len(), 1);
        tx.on_ack(upto, 0, &cfg);
        assert!(!tx.has_unacked());
        assert_eq!(tx.rto(), cfg.initial_rto, "ack resets the backoff");
        assert!(tx.on_timeout(&cfg).is_empty(), "nothing left to retransmit");
    }

    #[test]
    fn backoff_caps_at_max_rto() {
        let cfg = SessionConfig {
            initial_rto: SimTime::from_micros(50),
            max_rto: SimTime::from_micros(300),
        };
        let mut tx = LinkSender::new(&cfg, 0);
        tx.wrap(payload(1));
        for _ in 0..10 {
            tx.on_timeout(&cfg);
        }
        assert_eq!(tx.rto(), SimTime::from_micros(300));
    }

    #[test]
    fn duplicated_ack_is_idempotent() {
        let cfg = SessionConfig::default();
        let mut tx = LinkSender::new(&cfg, 0);
        tx.wrap(payload(1));
        tx.wrap(payload(2));
        tx.on_ack(1, 0, &cfg);
        assert_eq!(tx.unacked_len(), 1);
        // The network duplicates the ack: no further effect.
        tx.on_ack(1, 0, &cfg);
        assert_eq!(tx.unacked_len(), 1);
        // A stale ack after a newer one: no effect either.
        tx.on_ack(2, 0, &cfg);
        tx.on_ack(1, 0, &cfg);
        assert!(!tx.has_unacked());
    }

    #[test]
    fn stale_ack_does_not_reset_backoff() {
        let cfg = SessionConfig::default();
        let mut tx = LinkSender::new(&cfg, 0);
        tx.wrap(payload(1));
        tx.on_ack(1, 0, &cfg);
        tx.wrap(payload(2));
        tx.on_timeout(&cfg);
        let backed_off = tx.rto();
        assert!(backed_off > cfg.initial_rto);
        // A duplicate of the *old* ack acknowledges nothing new.
        tx.on_ack(1, 0, &cfg);
        assert_eq!(tx.rto(), backed_off);
    }

    #[test]
    fn duplicate_cumulative_ack_under_backoff_does_not_reset_rto() {
        // Regression: the backoff reset used to key off "the unacked set
        // shrank"; it must key off "the cumulative watermark advanced".
        let cfg = SessionConfig::default();
        let mut tx = LinkSender::new(&cfg, 0);
        tx.wrap(payload(1));
        tx.wrap(payload(2));
        tx.on_ack(1, 0, &cfg);
        assert_eq!(tx.acked_upto(), 1);
        assert_eq!(tx.rto(), cfg.initial_rto, "advancing ack resets");
        // Seq 2 keeps timing out; backoff builds up.
        tx.on_timeout(&cfg);
        tx.on_timeout(&cfg);
        let backed_off = tx.rto();
        assert_eq!(backed_off, SimTime::from_micros(200));
        // The network replays the old cumulative ack: nothing new is
        // acknowledged, so the built-up backoff must survive.
        tx.on_ack(1, 0, &cfg);
        tx.on_ack(0, 0, &cfg);
        assert_eq!(tx.rto(), backed_off, "duplicate ack must not reset backoff");
        assert_eq!(tx.acked_upto(), 1);
        // Only the ack that finally covers seq 2 resets it.
        tx.on_ack(2, 0, &cfg);
        assert_eq!(tx.acked_upto(), 2);
        assert_eq!(tx.rto(), cfg.initial_rto);
        assert!(!tx.has_unacked());
    }

    #[test]
    fn stale_epoch_ack_cannot_advance_reborn_watermark() {
        // Regression (the restarted-live-replica bug): a cumulative ack
        // earned by the pre-crash incarnation must not make the reborn
        // sender believe its fresh payloads were delivered.
        let cfg = SessionConfig::default();
        let mut s = Session::new(cfg);
        let (a, b) = (NodeId(0), NodeId(1));
        s.sender(a, b).wrap(payload(1));
        s.sender(a, b).wrap(payload(2));
        let old_epoch = s.sender(a, b).epoch();
        // The receiver delivered both; its ack (upto=2, old epoch) is
        // still in flight when `a` crashes and recovers as incarnation 1.
        s.set_base_epoch(a, 1);
        let rewrapped = s.reset_sender(a, b);
        assert_eq!(rewrapped.len(), 2, "unacked payloads are re-wrapped");
        let new_epoch = s.sender(a, b).epoch();
        assert_eq!(new_epoch, 1 << 32);
        assert!(new_epoch > old_epoch);
        // The ghost ack arrives: ignored wholesale.
        s.sender(a, b).on_ack(2, old_epoch, &cfg);
        assert_eq!(s.sender(a, b).acked_upto(), 0);
        assert_eq!(s.sender(a, b).unacked_len(), 2);
        // Only an ack in the reborn epoch counts.
        s.sender(a, b).on_ack(2, new_epoch, &cfg);
        assert_eq!(s.sender(a, b).acked_upto(), 2);
        assert!(!s.sender(a, b).has_unacked());
    }

    #[test]
    fn receiver_resets_on_higher_epoch_and_drops_ghosts() {
        let mut rx = LinkReceiver::new();
        let (ready, _) = rx.on_data(1, 0, payload(1));
        assert_eq!(ready.len(), 1);
        let (ready, _) = rx.on_data(2, 0, payload(2));
        assert_eq!(ready.len(), 1);
        // The sender resets into epoch 1: sequence numbering restarts.
        let (ready, upto) = rx.on_data(1, 1, payload(10));
        assert_eq!(ready.iter().map(val).collect::<Vec<_>>(), vec![10]);
        assert_eq!(upto, 1, "delivery watermark restarted with the epoch");
        assert_eq!(rx.epoch(), 1);
        // A ghost of the dead epoch (a reordered duplicate): dropped,
        // and the re-ack reflects the *current* epoch's watermark.
        let (ready, upto) = rx.on_data(2, 0, payload(2));
        assert!(ready.is_empty());
        assert_eq!(upto, 1);
    }

    #[test]
    fn reset_sender_rewraps_in_order_and_bumps_within_incarnation() {
        let mut s = Session::new(SessionConfig::default());
        let (a, b) = (NodeId(0), NodeId(1));
        s.sender(a, b).wrap(payload(1));
        s.sender(a, b).wrap(payload(2));
        let cfg = s.cfg;
        s.sender(a, b).on_ack(1, 0, &cfg);
        // Reset without an incarnation bump (receiver reborn, sender
        // alive): the volatile low bits advance.
        let wire = s.reset_sender(a, b);
        assert_eq!(s.sender(a, b).epoch(), 1);
        assert_eq!(wire.len(), 1, "only the unacked payload is re-wrapped");
        let Msg::SessData { seq, epoch, inner } = &wire[0] else { panic!() };
        assert_eq!((*seq, *epoch), (1, 1), "fresh sequence numbering");
        assert_eq!(val(inner), 2);
        // A later incarnation bump dominates the volatile counter.
        s.set_base_epoch(a, 2);
        s.reset_sender(a, b);
        assert_eq!(s.sender(a, b).epoch(), 2 << 32);
    }

    #[test]
    fn token_roundtrip() {
        let (a, b) = (NodeId(3), NodeId(900));
        assert_eq!(token_link(link_token(a, b)), (a, b));
        assert_ne!(link_token(a, b), link_token(b, a));
    }

    #[test]
    fn session_tracks_links_independently() {
        let mut s = Session::new(SessionConfig::default());
        s.sender(NodeId(0), NodeId(1)).wrap(payload(1));
        s.sender(NodeId(0), NodeId(2)).wrap(payload(2));
        s.sender(NodeId(0), NodeId(2)).wrap(payload(3));
        assert_eq!(s.total_unacked(), 3);
        let cfg = s.cfg;
        s.sender(NodeId(0), NodeId(2)).on_ack(2, 0, &cfg);
        assert_eq!(s.total_unacked(), 1);
        assert_eq!(s.receiver(NodeId(0), NodeId(1)).delivered(), 0);
    }
}
