//! # mc-proto — the DSM protocols of the mixed-consistency paper
//!
//! Implementations of the memory systems described (and implied) by
//! *Agrawal, Choy, Leong, Singh, PODC '94*, as [`mc_sim::Protocol`]s over
//! the deterministic simulator:
//!
//! * [`Mode::Pram`] — pipelined RAM: FIFO update broadcast, local reads,
//!   no vector timestamps on the wire;
//! * [`Mode::Causal`] — causal memory: vector-timestamped updates applied
//!   in causal order;
//! * [`Mode::Mixed`] — the paper's contribution: one substrate, per-read
//!   labels (causal reads wait for the reader's causal cut, PRAM reads
//!   return the most recent local value);
//! * [`Mode::Sc`] — the sequentially consistent baseline: a central
//!   memory server, every access a blocking RPC.
//!
//! plus the synchronization subsystem of Sections 3.1 and 6: a read/write
//! **lock manager** with the three propagation variants
//! ([`LockPropagation::Eager`], [`LockPropagation::Lazy`],
//! [`LockPropagation::DemandDriven`]), a counting **barrier manager**, and
//! **await** operations, and the commutative **counter objects** of
//! Section 5.3.
//!
//! The user-facing API lives in the `mixed-consistency` crate; this crate
//! is the protocol engine.

#![warn(missing_docs)]

pub mod config;
pub mod dsm;
pub mod durability;
pub mod manager;
pub mod msg;
pub mod replica;
pub mod session;
pub mod wire;

pub use config::{BatchPolicy, DsmConfig, LockPropagation, Mode, ShardConfig};
pub use dsm::{Dsm, Req, Resp};
pub use durability::{
    crc32, decode_wal, DurabilityPolicy, FileDisk, MemDisk, Snapshot, SnapshotError, WalRecord,
    WalTail,
};
pub use manager::Manager;
pub use msg::{BatchEntry, GrantInfo, Msg, UpdatePayload};
pub use replica::{Replica, ShardState};
pub use session::{LinkReceiver, LinkSender, Session, SessionConfig};
pub use wire::{
    decode_frame, encode_control, encode_frame, next_frame, Control, Frame, WireError,
    CONTROL_TAG_BASE, FRAME_HEADER,
};
