//! Binary wire codec for [`Msg`] — the format real TCP links carry.
//!
//! A frame is a 4-byte little-endian length prefix followed by the body.
//! **The body length of every message equals [`Msg::wire_bytes`]
//! exactly**: the modeled byte accounting that drives the simulator's
//! latency and bandwidth counters is the physical truth on the wire, not
//! an estimate. Fields are packed little-endian; where a variant's
//! modeled size exceeds its natural packing the body is zero-padded (the
//! model rounds small headers up to plausible aligned sizes), and the
//! decoder consumes the padding.
//!
//! Layout conventions:
//!
//! - The first body byte is a tag: variant id in the low 5 bits, up to
//!   three presence flags in the high 3 bits.
//! - A [`Value`] travels as a kind byte plus an 8-byte operand; an
//!   [`UpdatePayload`] packs its own kind into the same byte (payload
//!   kind in the high nibble, value kind in the low nibble) — 9 bytes.
//! - A dense [`VClock`] travels as a `u16` component count plus 4 bytes
//!   per component; an optional clock uses `0xFFFF` as the `None`
//!   sentinel (real clocks cover fewer than 65535 processes).
//! - Batch headers carry the writing process as a `u16` and omit the
//!   per-entry writer process: every entry of a batch is an own write of
//!   the batch's sender, so the codec reconstructs
//!   `WriteId { proc: header, seq: entry }` on decode.
//! - [`Msg::SessData`] packs its sequence number into 7 bytes (56 bits —
//!   asserted; at the simulator's message rates that is thousands of
//!   years of traffic) so header plus epoch fit the modeled 16, and the
//!   wrapped message follows as its own unprefixed body (every body is
//!   self-delimiting because its length is computable while decoding).
//!
//! Control frames (tags ≥ [`CONTROL_TAG_BASE`]) never appear inside
//! `Msg` traffic: they are the TCP runtime's link-management vocabulary
//! (peer identification, coordinator signals), kept in the same framing
//! so one reader loop handles both.

use bytes::{Bytes, BytesMut};
use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, VClock, Value, WriteId};

use crate::msg::{BatchEntry, GrantInfo, Msg, UpdatePayload};

/// Bytes of the frame length prefix.
pub const FRAME_HEADER: usize = 4;

/// First tag value reserved for [`Control`] frames.
pub const CONTROL_TAG_BASE: u8 = 200;

const TAG_UPDATE: u8 = 0;
const TAG_UPDATE_BATCH: u8 = 1;
const TAG_FLUSH: u8 = 2;
const TAG_FLUSH_ACK: u8 = 3;
const TAG_LOCK_REQ: u8 = 4;
const TAG_LOCK_GRANT: u8 = 5;
const TAG_LOCK_REL: u8 = 6;
const TAG_BARRIER_ARRIVE: u8 = 7;
const TAG_BARRIER_RELEASE: u8 = 8;
const TAG_SC_READ: u8 = 9;
const TAG_SC_READ_RESP: u8 = 10;
const TAG_SC_WRITE: u8 = 11;
const TAG_SC_WRITE_ACK: u8 = 12;
const TAG_SC_AWAIT: u8 = 13;
const TAG_SC_AWAIT_RESP: u8 = 14;
const TAG_SESS_DATA: u8 = 15;
const TAG_SESS_ACK: u8 = 16;
const TAG_RECOVER_REQ: u8 = 17;
const TAG_RECOVER_RESP: u8 = 18;
const TAG_SHARD_UPDATE: u8 = 19;
const TAG_SHARD_UPDATE_BATCH: u8 = 20;
const TAG_SUB_REQ: u8 = 21;
const TAG_SUB_ACK: u8 = 22;
const TAG_SUB_NOTIFY: u8 = 23;
const TAG_SHARD_RECOVER_REQ: u8 = 24;
const TAG_SHARD_RECOVER_RESP: u8 = 25;

const TAG_CTRL_HELLO: u8 = 200;
const TAG_CTRL_SHUTDOWN: u8 = 201;
const TAG_CTRL_DONE: u8 = 202;

/// Presence flags in the tag's high bits.
const FLAG_A: u8 = 0x20;
const FLAG_B: u8 = 0x40;

const VCLOCK_NONE: u16 = u16::MAX;

/// Link-management frames of the TCP runtime, sharing `Msg` framing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// First frame on every connection: which node is dialing.
    Hello {
        /// The dialing node's id in the live topology.
        node: u32,
    },
    /// Coordinator broadcast: drain and exit.
    Shutdown,
    /// A process finished its program (sent to the coordinator).
    Done {
        /// The finished process.
        proc: u32,
    },
}

/// One decoded frame: protocol traffic or link management.
#[derive(Debug)]
pub enum Frame {
    /// A protocol message.
    Msg(Msg),
    /// A control frame.
    Control(Control),
}

/// Decode failure: the frame is not a valid encoding.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the fields it promised.
    Truncated,
    /// Unknown variant tag.
    BadTag(u8),
    /// Unknown value/payload kind byte.
    BadKind(u8),
    /// The body had bytes left over after the message (framing bug).
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadKind(k) => write!(f, "unknown value kind {k}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn value_kind(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::F64(_) => 1,
        Value::Bool(_) => 2,
    }
}

fn value_operand(v: &Value) -> u64 {
    match v {
        Value::Int(i) => *i as u64,
        Value::F64(x) => x.to_bits(),
        Value::Bool(b) => *b as u64,
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u8(value_kind(v));
    buf.put_u64_le(value_operand(v));
}

fn put_payload(buf: &mut BytesMut, p: &UpdatePayload) {
    let (pk, v) = match p {
        UpdatePayload::Set(v) => (0u8, v),
        UpdatePayload::Add(v) => (1u8, v),
    };
    buf.put_u8((pk << 4) | value_kind(v));
    buf.put_u64_le(value_operand(v));
}

fn put_vclock(buf: &mut BytesMut, c: &VClock) {
    assert!(c.len() < VCLOCK_NONE as usize, "clock too wide for the wire");
    buf.put_u16_le(c.len() as u16);
    for i in 0..c.len() {
        buf.put_u32_le(c.get(ProcId(i as u32)));
    }
}

fn put_vclock_opt(buf: &mut BytesMut, c: Option<&VClock>) {
    match c {
        None => buf.put_u16_le(VCLOCK_NONE),
        Some(c) => put_vclock(buf, c),
    }
}

fn put_triples(buf: &mut BytesMut, ts: &[(u32, ProcId, u32)]) {
    buf.put_u16_le(u16::try_from(ts.len()).expect("triple count fits u16"));
    for &(shard, p, seq) in ts {
        buf.put_u32_le(shard);
        buf.put_u32_le(p.0);
        buf.put_u32_le(seq);
    }
}

fn put_pad(buf: &mut BytesMut, n: usize) {
    for _ in 0..n {
        buf.put_u8(0);
    }
}

fn proc_u16(p: ProcId) -> u16 {
    u16::try_from(p.0).expect("process id fits u16 on the wire")
}

/// One batch entry: 20 bytes plus 4 per extra `Add` member. The writer's
/// process id is implied by the enclosing batch header.
fn put_entry(buf: &mut BytesMut, e: &BatchEntry) {
    buf.put_u32_le(e.loc.0);
    put_payload(buf, &e.payload);
    buf.put_u32_le(e.writer.seq);
    buf.put_u16_le(u16::try_from(e.adds.len()).expect("adds count fits u16"));
    put_pad(buf, 1);
    for &a in &e.adds {
        buf.put_u32_le(a);
    }
}

fn put_entries(buf: &mut BytesMut, proc: ProcId, entries: &[BatchEntry]) -> u16 {
    for e in entries {
        debug_assert_eq!(e.writer.proc, proc, "batch entries are own writes of the sender");
        put_entry(buf, e);
    }
    u16::try_from(entries.len()).expect("entry count fits u16")
}

/// Appends the body of `msg` (no length prefix) to `buf`. The number of
/// bytes appended is exactly `msg.wire_bytes()`.
fn encode_body(buf: &mut BytesMut, msg: &Msg) {
    match msg {
        Msg::Update { writer, loc, payload, deps } => {
            buf.put_u8(TAG_UPDATE);
            buf.put_u32_le(writer.proc.0);
            buf.put_u32_le(writer.seq);
            buf.put_u32_le(loc.0);
            put_payload(buf, payload);
            put_vclock_opt(buf, deps.as_ref());
        }
        Msg::UpdateBatch { proc, first_seq, upto, entries, delta, ack } => {
            let mut tag = TAG_UPDATE_BATCH;
            if delta.is_some() {
                tag |= FLAG_A;
            }
            if ack.is_some() {
                tag |= FLAG_B;
            }
            buf.put_u8(tag);
            buf.put_u16_le(proc_u16(*proc));
            buf.put_u32_le(*first_seq);
            buf.put_u32_le(*upto);
            buf.put_u16_le(u16::try_from(entries.len()).expect("entry count fits u16"));
            let dlen = delta.as_ref().map_or(0, Vec::len);
            buf.put_u16_le(u16::try_from(dlen).expect("delta count fits u16"));
            put_pad(buf, 1);
            if let Some((upto, epoch)) = ack {
                buf.put_u64_le(*upto);
                buf.put_u64_le(*epoch);
            }
            if let Some(d) = delta {
                for &(p, c) in d {
                    buf.put_u32_le(p.0);
                    buf.put_u32_le(c);
                }
            }
            put_entries(buf, *proc, entries);
        }
        Msg::Flush { from_proc, upto } => {
            buf.put_u8(TAG_FLUSH);
            buf.put_u32_le(from_proc.0);
            buf.put_u32_le(*upto);
            put_pad(buf, 3);
        }
        Msg::FlushAck => {
            buf.put_u8(TAG_FLUSH_ACK);
            put_pad(buf, 7);
        }
        Msg::LockReq { proc, lock, mode } => {
            buf.put_u8(TAG_LOCK_REQ);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(lock.0);
            buf.put_u8(matches!(mode, LockMode::Write) as u8);
            put_pad(buf, 3);
        }
        Msg::LockGrant { lock, grant } => {
            buf.put_u8(TAG_LOCK_GRANT);
            buf.put_u32_le(lock.0);
            let GrantInfo { knowledge, preds, demand } = grant;
            assert!(knowledge.len() < VCLOCK_NONE as usize, "clock too wide for the wire");
            buf.put_u16_le(knowledge.len() as u16);
            buf.put_u16_le(u16::try_from(preds.len()).expect("pred count fits u16"));
            buf.put_u16_le(u16::try_from(demand.len()).expect("demand count fits u16"));
            put_pad(buf, 5);
            for i in 0..knowledge.len() {
                buf.put_u32_le(knowledge.get(ProcId(i as u32)));
            }
            for &(p, c) in preds {
                buf.put_u32_le(p.0);
                buf.put_u32_le(c);
            }
            for &(loc, p, seq) in demand {
                buf.put_u32_le(loc.0);
                buf.put_u32_le(p.0);
                buf.put_u32_le(seq);
            }
        }
        Msg::LockRel { proc, lock, mode, knowledge, own_count, dirty } => {
            buf.put_u8(TAG_LOCK_REL);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(lock.0);
            buf.put_u8(matches!(mode, LockMode::Write) as u8);
            buf.put_u32_le(*own_count);
            // The modeled 17-byte header leaves exactly three count
            // bytes; a knowledge clock is one component per process, so
            // a u8 holds it for any cluster this workspace runs.
            buf.put_u8(u8::try_from(knowledge.len()).expect("release clock fits u8"));
            buf.put_u16_le(u16::try_from(dirty.len()).expect("dirty count fits u16"));
            for i in 0..knowledge.len() {
                buf.put_u32_le(knowledge.get(ProcId(i as u32)));
            }
            // Dirty entries are modeled at 12 bytes (loc + seq + pad).
            for &(loc, seq) in dirty {
                buf.put_u32_le(loc.0);
                buf.put_u32_le(seq);
                put_pad(buf, 4);
            }
        }
        Msg::BarrierArrive { proc, barrier, round, knowledge } => {
            buf.put_u8(TAG_BARRIER_ARRIVE);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(barrier.0);
            buf.put_u32_le(*round);
            put_vclock(buf, knowledge);
            put_pad(buf, 1);
        }
        Msg::BarrierRelease { barrier, round, knowledge } => {
            buf.put_u8(TAG_BARRIER_RELEASE);
            buf.put_u32_le(barrier.0);
            buf.put_u32_le(*round);
            put_vclock(buf, knowledge);
            put_pad(buf, 1);
        }
        Msg::ScRead { proc, loc } => {
            buf.put_u8(TAG_SC_READ);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(loc.0);
            put_pad(buf, 3);
        }
        Msg::ScReadResp { value, writer } => {
            let mut tag = TAG_SC_READ_RESP;
            if writer.is_some() {
                tag |= FLAG_A;
            }
            buf.put_u8(tag);
            put_value(buf, value);
            match writer {
                Some(w) => {
                    buf.put_u32_le(w.proc.0);
                    buf.put_u32_le(w.seq);
                    put_pad(buf, 6);
                }
                None => put_pad(buf, 14),
            }
        }
        Msg::ScWrite { writer, loc, payload } => {
            buf.put_u8(TAG_SC_WRITE);
            buf.put_u32_le(writer.proc.0);
            buf.put_u32_le(writer.seq);
            buf.put_u32_le(loc.0);
            put_payload(buf, payload);
            put_pad(buf, 6);
        }
        Msg::ScWriteAck => {
            buf.put_u8(TAG_SC_WRITE_ACK);
            put_pad(buf, 7);
        }
        Msg::ScAwait { proc, loc, value } => {
            buf.put_u8(TAG_SC_AWAIT);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(loc.0);
            put_value(buf, value);
            put_pad(buf, 2);
        }
        Msg::ScAwaitResp { value, writers } => {
            buf.put_u8(TAG_SC_AWAIT_RESP);
            put_value(buf, value);
            buf.put_u16_le(u16::try_from(writers.len()).expect("writer count fits u16"));
            put_pad(buf, 4);
            for w in writers {
                buf.put_u32_le(w.proc.0);
                buf.put_u32_le(w.seq);
            }
        }
        Msg::SessData { seq, epoch, inner } => {
            buf.put_u8(TAG_SESS_DATA);
            assert!(*seq < (1 << 56), "session sequence fits 56 bits");
            buf.put_slice(&seq.to_le_bytes()[..7]);
            buf.put_u64_le(*epoch);
            encode_body(buf, inner);
        }
        Msg::SessAck { upto, epoch } => {
            buf.put_u8(TAG_SESS_ACK);
            buf.put_u64_le(*upto);
            buf.put_u64_le(*epoch);
            put_pad(buf, 3);
        }
        Msg::RecoverReq { proc, incarnation, applied } => {
            buf.put_u8(TAG_RECOVER_REQ);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*incarnation);
            put_vclock(buf, applied);
            put_pad(buf, 5);
        }
        Msg::RecoverResp { proc, first_seq, upto, entries, deps, seen } => {
            buf.put_u8(TAG_RECOVER_RESP);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*first_seq);
            buf.put_u32_le(*upto);
            buf.put_u32_le(*seen);
            buf.put_u16_le(u16::try_from(entries.len()).expect("entry count fits u16"));
            put_vclock_opt(buf, deps.as_ref());
            put_pad(buf, 3);
            put_entries(buf, *proc, entries);
        }
        Msg::ShardUpdate { writer, loc, payload, prev, deps } => {
            buf.put_u8(TAG_SHARD_UPDATE);
            buf.put_u32_le(writer.proc.0);
            buf.put_u32_le(writer.seq);
            buf.put_u32_le(loc.0);
            put_payload(buf, payload);
            buf.put_u32_le(*prev);
            put_triples(buf, deps);
        }
        Msg::ShardUpdateBatch { proc, shard, prev, upto, entries, deps } => {
            buf.put_u8(TAG_SHARD_UPDATE_BATCH);
            buf.put_u16_le(proc_u16(*proc));
            buf.put_u32_le(*shard);
            buf.put_u32_le(*prev);
            buf.put_u32_le(*upto);
            buf.put_u16_le(u16::try_from(entries.len()).expect("entry count fits u16"));
            put_triples(buf, deps);
            put_pad(buf, 1);
            put_entries(buf, *proc, entries);
        }
        Msg::SubReq { proc, shard } => {
            buf.put_u8(TAG_SUB_REQ);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*shard);
            put_pad(buf, 3);
        }
        Msg::SubAck { shard, subs } => {
            buf.put_u8(TAG_SUB_ACK);
            buf.put_u32_le(*shard);
            buf.put_u16_le(u16::try_from(subs.len()).expect("sub count fits u16"));
            put_pad(buf, 5);
            for p in subs {
                buf.put_u32_le(p.0);
            }
        }
        Msg::SubNotify { shard, proc } => {
            buf.put_u8(TAG_SUB_NOTIFY);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*shard);
            put_pad(buf, 3);
        }
        Msg::ShardRecoverReq { proc, incarnation, applied } => {
            buf.put_u8(TAG_SHARD_RECOVER_REQ);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*incarnation);
            put_triples(buf, applied);
            put_pad(buf, 5);
        }
        Msg::ShardRecoverResp { proc, shard, prev, upto, entries, deps, seen } => {
            buf.put_u8(TAG_SHARD_RECOVER_RESP);
            buf.put_u32_le(proc.0);
            buf.put_u32_le(*shard);
            buf.put_u32_le(*prev);
            buf.put_u32_le(*upto);
            buf.put_u32_le(*seen);
            buf.put_u16_le(u16::try_from(entries.len()).expect("entry count fits u16"));
            put_triples(buf, deps);
            put_pad(buf, 3);
            put_entries(buf, *proc, entries);
        }
    }
}

/// Appends `msg` as one length-prefixed frame to `buf`. The body length
/// is exactly [`Msg::wire_bytes`] — asserted, so the modeled accounting
/// can never drift from the physical frames.
pub fn encode_frame(buf: &mut BytesMut, msg: &Msg) {
    let want = msg.wire_bytes();
    buf.put_u32_le(u32::try_from(want).expect("frame fits u32 length"));
    let before = buf.len();
    encode_body(buf, msg);
    debug_assert_eq!(
        (buf.len() - before) as u64,
        want,
        "encoded size diverged from wire_bytes for {:?}",
        msg.kind()
    );
}

/// Appends a control frame (fixed 8-byte body).
pub fn encode_control(buf: &mut BytesMut, ctrl: &Control) {
    buf.put_u32_le(8);
    match ctrl {
        Control::Hello { node } => {
            buf.put_u8(TAG_CTRL_HELLO);
            buf.put_u32_le(*node);
            put_pad(buf, 3);
        }
        Control::Shutdown => {
            buf.put_u8(TAG_CTRL_SHUTDOWN);
            put_pad(buf, 7);
        }
        Control::Done { proc } => {
            buf.put_u8(TAG_CTRL_DONE);
            buf.put_u32_le(*proc);
            put_pad(buf, 3);
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    fn value_from(&mut self, kind: u8) -> Result<Value, WireError> {
        let operand = self.u64()?;
        match kind {
            0 => Ok(Value::Int(operand as i64)),
            1 => Ok(Value::F64(f64::from_bits(operand))),
            2 => Ok(Value::Bool(operand != 0)),
            k => Err(WireError::BadKind(k)),
        }
    }

    fn value(&mut self) -> Result<Value, WireError> {
        let kind = self.u8()?;
        self.value_from(kind)
    }

    fn payload(&mut self) -> Result<UpdatePayload, WireError> {
        let kind = self.u8()?;
        let v = self.value_from(kind & 0x0F)?;
        match kind >> 4 {
            0 => Ok(UpdatePayload::Set(v)),
            1 => Ok(UpdatePayload::Add(v)),
            k => Err(WireError::BadKind(kind | (k << 4))),
        }
    }

    fn vclock_n(&mut self, n: usize) -> Result<VClock, WireError> {
        let mut c = VClock::new(n);
        for i in 0..n {
            c.set(ProcId(i as u32), self.u32()?);
        }
        Ok(c)
    }

    fn vclock(&mut self) -> Result<VClock, WireError> {
        let n = self.u16()? as usize;
        self.vclock_n(n)
    }

    fn vclock_opt(&mut self) -> Result<Option<VClock>, WireError> {
        let n = self.u16()?;
        if n == VCLOCK_NONE {
            return Ok(None);
        }
        Ok(Some(self.vclock_n(n as usize)?))
    }

    fn triples(&mut self) -> Result<Vec<(u32, ProcId, u32)>, WireError> {
        let n = self.u16()? as usize;
        let mut ts = Vec::with_capacity(n);
        for _ in 0..n {
            ts.push((self.u32()?, ProcId(self.u32()?), self.u32()?));
        }
        Ok(ts)
    }

    fn entry(&mut self, proc: ProcId) -> Result<BatchEntry, WireError> {
        let loc = Loc(self.u32()?);
        let payload = self.payload()?;
        let seq = self.u32()?;
        let nadds = self.u16()? as usize;
        self.skip(1)?;
        let mut adds = Vec::with_capacity(nadds);
        for _ in 0..nadds {
            adds.push(self.u32()?);
        }
        Ok(BatchEntry { loc, payload, writer: WriteId { proc, seq }, adds })
    }

    fn entries(&mut self, proc: ProcId, n: usize) -> Result<Vec<BatchEntry>, WireError> {
        let mut es = Vec::with_capacity(n);
        for _ in 0..n {
            es.push(self.entry(proc)?);
        }
        Ok(es)
    }
}

fn decode_body(cur: &mut Cursor<'_>) -> Result<Msg, WireError> {
    let tag = cur.u8()?;
    let flags = tag & 0xE0;
    let msg = match if tag >= CONTROL_TAG_BASE { tag } else { tag & 0x1F } {
        TAG_UPDATE => {
            let writer = WriteId { proc: ProcId(cur.u32()?), seq: cur.u32()? };
            let loc = Loc(cur.u32()?);
            let payload = cur.payload()?;
            let deps = cur.vclock_opt()?;
            Msg::Update { writer, loc, payload, deps }
        }
        TAG_UPDATE_BATCH => {
            let proc = ProcId(cur.u16()? as u32);
            let first_seq = cur.u32()?;
            let upto = cur.u32()?;
            let ne = cur.u16()? as usize;
            let nd = cur.u16()? as usize;
            cur.skip(1)?;
            let ack = if flags & FLAG_B != 0 { Some((cur.u64()?, cur.u64()?)) } else { None };
            let delta = if flags & FLAG_A != 0 {
                let mut d = Vec::with_capacity(nd);
                for _ in 0..nd {
                    d.push((ProcId(cur.u32()?), cur.u32()?));
                }
                Some(d)
            } else {
                None
            };
            let entries = cur.entries(proc, ne)?;
            Msg::UpdateBatch { proc, first_seq, upto, entries: entries.into(), delta, ack }
        }
        TAG_FLUSH => {
            let m = Msg::Flush { from_proc: ProcId(cur.u32()?), upto: cur.u32()? };
            cur.skip(3)?;
            m
        }
        TAG_FLUSH_ACK => {
            cur.skip(7)?;
            Msg::FlushAck
        }
        TAG_LOCK_REQ => {
            let proc = ProcId(cur.u32()?);
            let lock = LockId(cur.u32()?);
            let mode = if cur.u8()? != 0 { LockMode::Write } else { LockMode::Read };
            cur.skip(3)?;
            Msg::LockReq { proc, lock, mode }
        }
        TAG_LOCK_GRANT => {
            let lock = LockId(cur.u32()?);
            let nk = cur.u16()? as usize;
            let np = cur.u16()? as usize;
            let nd = cur.u16()? as usize;
            cur.skip(5)?;
            let knowledge = cur.vclock_n(nk)?;
            let mut preds = Vec::with_capacity(np);
            for _ in 0..np {
                preds.push((ProcId(cur.u32()?), cur.u32()?));
            }
            let mut demand = Vec::with_capacity(nd);
            for _ in 0..nd {
                demand.push((Loc(cur.u32()?), ProcId(cur.u32()?), cur.u32()?));
            }
            Msg::LockGrant { lock, grant: GrantInfo { knowledge, preds, demand } }
        }
        TAG_LOCK_REL => {
            let proc = ProcId(cur.u32()?);
            let lock = LockId(cur.u32()?);
            let mode = if cur.u8()? != 0 { LockMode::Write } else { LockMode::Read };
            let own_count = cur.u32()?;
            let nk = cur.u8()? as usize;
            let nd = cur.u16()? as usize;
            let knowledge = cur.vclock_n(nk)?;
            let mut dirty = Vec::with_capacity(nd);
            for _ in 0..nd {
                let loc = Loc(cur.u32()?);
                let seq = cur.u32()?;
                cur.skip(4)?;
                dirty.push((loc, seq));
            }
            Msg::LockRel { proc, lock, mode, knowledge, own_count, dirty }
        }
        TAG_BARRIER_ARRIVE => {
            let proc = ProcId(cur.u32()?);
            let barrier = BarrierId(cur.u32()?);
            let round = cur.u32()?;
            let knowledge = cur.vclock()?;
            cur.skip(1)?;
            Msg::BarrierArrive { proc, barrier, round, knowledge }
        }
        TAG_BARRIER_RELEASE => {
            let barrier = BarrierId(cur.u32()?);
            let round = cur.u32()?;
            let knowledge = cur.vclock()?;
            cur.skip(1)?;
            Msg::BarrierRelease { barrier, round, knowledge }
        }
        TAG_SC_READ => {
            let m = Msg::ScRead { proc: ProcId(cur.u32()?), loc: Loc(cur.u32()?) };
            cur.skip(3)?;
            m
        }
        TAG_SC_READ_RESP => {
            let value = cur.value()?;
            let writer = if flags & FLAG_A != 0 {
                let w = WriteId { proc: ProcId(cur.u32()?), seq: cur.u32()? };
                cur.skip(6)?;
                Some(w)
            } else {
                cur.skip(14)?;
                None
            };
            Msg::ScReadResp { value, writer }
        }
        TAG_SC_WRITE => {
            let writer = WriteId { proc: ProcId(cur.u32()?), seq: cur.u32()? };
            let loc = Loc(cur.u32()?);
            let payload = cur.payload()?;
            cur.skip(6)?;
            Msg::ScWrite { writer, loc, payload }
        }
        TAG_SC_WRITE_ACK => {
            cur.skip(7)?;
            Msg::ScWriteAck
        }
        TAG_SC_AWAIT => {
            let proc = ProcId(cur.u32()?);
            let loc = Loc(cur.u32()?);
            let value = cur.value()?;
            cur.skip(2)?;
            Msg::ScAwait { proc, loc, value }
        }
        TAG_SC_AWAIT_RESP => {
            let value = cur.value()?;
            let nw = cur.u16()? as usize;
            cur.skip(4)?;
            let mut writers = Vec::with_capacity(nw);
            for _ in 0..nw {
                writers.push(WriteId { proc: ProcId(cur.u32()?), seq: cur.u32()? });
            }
            Msg::ScAwaitResp { value, writers }
        }
        TAG_SESS_DATA => {
            let mut seq_bytes = [0u8; 8];
            seq_bytes[..7].copy_from_slice(cur.take(7)?);
            let seq = u64::from_le_bytes(seq_bytes);
            let epoch = cur.u64()?;
            let inner = decode_body(cur)?;
            Msg::SessData { seq, epoch, inner: Box::new(inner) }
        }
        TAG_SESS_ACK => {
            let m = Msg::SessAck { upto: cur.u64()?, epoch: cur.u64()? };
            cur.skip(3)?;
            m
        }
        TAG_RECOVER_REQ => {
            let proc = ProcId(cur.u32()?);
            let incarnation = cur.u32()?;
            let applied = cur.vclock()?;
            cur.skip(5)?;
            Msg::RecoverReq { proc, incarnation, applied }
        }
        TAG_RECOVER_RESP => {
            let proc = ProcId(cur.u32()?);
            let first_seq = cur.u32()?;
            let upto = cur.u32()?;
            let seen = cur.u32()?;
            let ne = cur.u16()? as usize;
            let deps = cur.vclock_opt()?;
            cur.skip(3)?;
            let entries = cur.entries(proc, ne)?;
            Msg::RecoverResp { proc, first_seq, upto, entries, deps, seen }
        }
        TAG_SHARD_UPDATE => {
            let writer = WriteId { proc: ProcId(cur.u32()?), seq: cur.u32()? };
            let loc = Loc(cur.u32()?);
            let payload = cur.payload()?;
            let prev = cur.u32()?;
            let deps = cur.triples()?;
            Msg::ShardUpdate { writer, loc, payload, prev, deps }
        }
        TAG_SHARD_UPDATE_BATCH => {
            let proc = ProcId(cur.u16()? as u32);
            let shard = cur.u32()?;
            let prev = cur.u32()?;
            let upto = cur.u32()?;
            let ne = cur.u16()? as usize;
            let deps = cur.triples()?;
            cur.skip(1)?;
            let entries = cur.entries(proc, ne)?;
            Msg::ShardUpdateBatch { proc, shard, prev, upto, entries: entries.into(), deps }
        }
        TAG_SUB_REQ => {
            let m = Msg::SubReq { proc: ProcId(cur.u32()?), shard: cur.u32()? };
            cur.skip(3)?;
            m
        }
        TAG_SUB_ACK => {
            let shard = cur.u32()?;
            let ns = cur.u16()? as usize;
            cur.skip(5)?;
            let mut subs = Vec::with_capacity(ns);
            for _ in 0..ns {
                subs.push(ProcId(cur.u32()?));
            }
            Msg::SubAck { shard, subs }
        }
        TAG_SUB_NOTIFY => {
            let proc = ProcId(cur.u32()?);
            let shard = cur.u32()?;
            cur.skip(3)?;
            Msg::SubNotify { shard, proc }
        }
        TAG_SHARD_RECOVER_REQ => {
            let proc = ProcId(cur.u32()?);
            let incarnation = cur.u32()?;
            let applied = cur.triples()?;
            cur.skip(5)?;
            Msg::ShardRecoverReq { proc, incarnation, applied }
        }
        TAG_SHARD_RECOVER_RESP => {
            let proc = ProcId(cur.u32()?);
            let shard = cur.u32()?;
            let prev = cur.u32()?;
            let upto = cur.u32()?;
            let seen = cur.u32()?;
            let ne = cur.u16()? as usize;
            let deps = cur.triples()?;
            cur.skip(3)?;
            let entries = cur.entries(proc, ne)?;
            Msg::ShardRecoverResp { proc, shard, prev, upto, entries, deps, seen }
        }
        t => return Err(WireError::BadTag(t)),
    };
    Ok(msg)
}

/// Decodes one frame body (everything after the length prefix).
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    let mut cur = Cursor::new(body);
    let frame = match body.first() {
        Some(&t) if t >= CONTROL_TAG_BASE => {
            let tag = cur.u8()?;
            let ctrl = match tag {
                TAG_CTRL_HELLO => {
                    let node = cur.u32()?;
                    cur.skip(3)?;
                    Control::Hello { node }
                }
                TAG_CTRL_SHUTDOWN => {
                    cur.skip(7)?;
                    Control::Shutdown
                }
                TAG_CTRL_DONE => {
                    let proc = cur.u32()?;
                    cur.skip(3)?;
                    Control::Done { proc }
                }
                t => return Err(WireError::BadTag(t)),
            };
            Frame::Control(ctrl)
        }
        _ => Frame::Msg(decode_body(&mut cur)?),
    };
    if cur.pos != body.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(frame)
}

/// Extracts the next complete frame from an accumulating receive buffer,
/// if one is fully buffered. The returned [`Bytes`] is the frame *body*
/// (prefix stripped), **sliced out of the buffer without copying** —
/// it shares the underlying allocation, which the buffer's `reserve`
/// reclaims once all outstanding bodies are dropped.
pub fn next_frame(buf: &mut BytesMut) -> Option<Bytes> {
    if buf.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(buf[..FRAME_HEADER].try_into().expect("4 bytes")) as usize;
    if buf.len() < FRAME_HEADER + len {
        return None;
    }
    let frame = buf.split_to(FRAME_HEADER + len);
    Some(frame.slice(FRAME_HEADER..frame.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::Value;

    fn roundtrip(msg: Msg) {
        let mut buf = BytesMut::with_capacity(256);
        encode_frame(&mut buf, &msg);
        assert_eq!(
            buf.len() as u64,
            FRAME_HEADER as u64 + msg.wire_bytes(),
            "frame length != prefix + wire_bytes for {}",
            msg.kind()
        );
        let body = next_frame(&mut buf).expect("one full frame buffered");
        assert!(buf.is_empty(), "no bytes beyond the frame");
        let Frame::Msg(decoded) = decode_frame(&body).expect("valid frame") else {
            panic!("decoded a control frame from a Msg");
        };
        assert_eq!(format!("{msg:?}"), format!("{decoded:?}"), "roundtrip identity");
    }

    #[test]
    fn update_roundtrips_with_and_without_deps() {
        let w = WriteId { proc: ProcId(3), seq: 17 };
        roundtrip(Msg::Update {
            writer: w,
            loc: Loc(5),
            payload: UpdatePayload::Set(Value::Int(-9)),
            deps: None,
        });
        let mut deps = VClock::new(4);
        deps.set(ProcId(2), 11);
        roundtrip(Msg::Update {
            writer: w,
            loc: Loc(5),
            payload: UpdatePayload::Add(Value::F64(2.5)),
            deps: Some(deps),
        });
    }

    #[test]
    fn batch_roundtrips_all_flag_combinations() {
        let entries: std::sync::Arc<[BatchEntry]> = vec![
            BatchEntry {
                loc: Loc(0),
                payload: UpdatePayload::Set(Value::Bool(true)),
                writer: WriteId { proc: ProcId(1), seq: 4 },
                adds: vec![],
            },
            BatchEntry {
                loc: Loc(9),
                payload: UpdatePayload::Add(Value::Int(7)),
                writer: WriteId { proc: ProcId(1), seq: 6 },
                adds: vec![5, 6],
            },
        ]
        .into();
        for delta in [None, Some(vec![(ProcId(0), 3), (ProcId(2), 1)])] {
            for ack in [None, Some((42u64, 7u64))] {
                roundtrip(Msg::UpdateBatch {
                    proc: ProcId(1),
                    first_seq: 4,
                    upto: 6,
                    entries: entries.clone(),
                    delta: delta.clone(),
                    ack,
                });
            }
        }
    }

    #[test]
    fn session_wrapper_nests_any_payload() {
        let inner = Msg::Flush { from_proc: ProcId(2), upto: 30 };
        roundtrip(Msg::SessData {
            seq: 123456789,
            epoch: (7u64 << 32) | 2,
            inner: Box::new(inner),
        });
    }

    #[test]
    fn control_frames_roundtrip() {
        for ctrl in [Control::Hello { node: 3 }, Control::Shutdown, Control::Done { proc: 1 }] {
            let mut buf = BytesMut::with_capacity(64);
            encode_control(&mut buf, &ctrl);
            let body = next_frame(&mut buf).expect("full frame");
            let Frame::Control(decoded) = decode_frame(&body).expect("valid") else {
                panic!("control decoded as Msg");
            };
            assert_eq!(ctrl, decoded);
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut whole = BytesMut::with_capacity(64);
        encode_frame(&mut whole, &Msg::FlushAck);
        let encoded: Vec<u8> = whole.to_vec();
        let mut buf = BytesMut::with_capacity(64);
        for &b in &encoded[..encoded.len() - 1] {
            buf.put_u8(b);
            assert!(next_frame(&mut buf).is_none(), "incomplete frame must not decode");
        }
        buf.put_u8(encoded[encoded.len() - 1]);
        assert!(next_frame(&mut buf).is_some());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(matches!(decode_frame(&[0xFFu8; 2]), Err(WireError::BadTag(0xFF))));
        assert!(matches!(decode_frame(&[TAG_FLUSH]), Err(WireError::Truncated)));
        let mut buf = BytesMut::with_capacity(64);
        encode_frame(&mut buf, &Msg::FlushAck);
        let mut body = next_frame(&mut buf).expect("frame").to_vec();
        body.push(0);
        assert!(matches!(decode_frame(&body), Err(WireError::TrailingBytes)));
    }
}
