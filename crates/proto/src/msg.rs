//! Wire messages of the DSM protocols.
//!
//! Payload byte sizes are *modeled* (they feed the simulator's latency and
//! byte counters) — the point the paper makes about PRAM is precisely that
//! its update messages need no vector timestamps, so the models differ per
//! mode.

use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, VClock, Value, WriteId};

/// The payload of a memory update: overwrite or commutative increment
/// (the abstract-data-type extension of Section 5.3).
#[derive(Clone, Debug, PartialEq)]
pub enum UpdatePayload {
    /// Plain write `w(x)v`.
    Set(Value),
    /// Commutative `x += delta` (integer or float delta).
    Add(Value),
}

/// Everything a lock grant carries to the new holder.
#[derive(Clone, Debug, Default)]
pub struct GrantInfo {
    /// Accumulated knowledge vector of all previous critical sections
    /// (empty in PRAM mode).
    pub knowledge: VClock,
    /// The previous epoch's members with their own-write counts at release
    /// (the PRAM "immediately preceding process" information).
    pub preds: Vec<(ProcId, u32)>,
    /// Demand-driven invalidation set: locations written before earlier
    /// releases, with the required writer sequence number.
    pub demand: Vec<(Loc, ProcId, u32)>,
}

impl GrantInfo {
    /// Modeled wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 * self.knowledge.len() as u64
            + 8 * self.preds.len() as u64
            + 12 * self.demand.len() as u64
    }
}

/// A protocol message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Replicated-memory update broadcast (Section 6). `deps` is the
    /// writer's vector timestamp in causal/mixed mode, `None` in PRAM
    /// mode.
    Update {
        /// Identity of the write.
        writer: WriteId,
        /// Location updated.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// Vector timestamp (causal/mixed only).
        deps: Option<VClock>,
    },
    /// Eager unlock: "flush all updates" probe from a releasing process.
    Flush {
        /// The releasing process.
        from_proc: ProcId,
        /// Acknowledge once this many of its writes are applied.
        upto: u32,
    },
    /// Acknowledgement of a [`Msg::Flush`].
    FlushAck,
    /// Lock request to the manager.
    LockReq {
        /// Requesting process.
        proc: ProcId,
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Lock grant from the manager.
    LockGrant {
        /// Lock object.
        lock: LockId,
        /// Consistency payload.
        grant: GrantInfo,
    },
    /// Lock release to the manager.
    LockRel {
        /// Releasing process.
        proc: ProcId,
        /// Lock object.
        lock: LockId,
        /// Mode released.
        mode: LockMode,
        /// Releaser's knowledge vector (empty in PRAM mode).
        knowledge: VClock,
        /// Releaser's own-write count at release.
        own_count: u32,
        /// Demand-driven dirty set: locations this process wrote (latest
        /// own sequence number each) since its previous release of this
        /// lock.
        dirty: Vec<(Loc, u32)>,
    },
    /// Barrier arrival at the manager (carries the per-process knowledge
    /// vector — Section 6's message-count vector).
    BarrierArrive {
        /// Arriving process.
        proc: ProcId,
        /// Barrier object.
        barrier: BarrierId,
        /// Round index.
        round: u32,
        /// Arriving process's knowledge.
        knowledge: VClock,
    },
    /// Barrier release to every participant.
    BarrierRelease {
        /// Barrier object.
        barrier: BarrierId,
        /// Round index.
        round: u32,
        /// Merged knowledge of all participants.
        knowledge: VClock,
    },
    /// SC server: read request.
    ScRead {
        /// Requesting process.
        proc: ProcId,
        /// Location.
        loc: Loc,
    },
    /// SC server: read response.
    ScReadResp {
        /// Value at the server.
        value: Value,
        /// The write that produced it (None = initial).
        writer: Option<WriteId>,
    },
    /// SC server: write/update request.
    ScWrite {
        /// Identity of the write.
        writer: WriteId,
        /// Location.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
    },
    /// SC server: write acknowledgement.
    ScWriteAck,
    /// SC server: register an await watch.
    ScAwait {
        /// Requesting process.
        proc: ProcId,
        /// Location.
        loc: Loc,
        /// Value awaited.
        value: Value,
    },
    /// SC server: await satisfied.
    ScAwaitResp {
        /// The observed value.
        value: Value,
        /// The writes that produced it.
        writers: Vec<WriteId>,
    },
    /// Reliable-session wrapper (see [`crate::session`]): `inner` is the
    /// `seq`-th payload on its directed sender→receiver link.
    SessData {
        /// Per-link sequence number (first payload is 1).
        seq: u64,
        /// The wrapped protocol message.
        inner: Box<Msg>,
    },
    /// Cumulative session acknowledgement: every payload with sequence
    /// number ≤ `upto` on this link has been delivered in order.
    SessAck {
        /// Highest in-order sequence number delivered.
        upto: u64,
    },
}

impl Msg {
    /// Modeled wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Update { deps, .. } => 24 + deps.as_ref().map_or(0, |d| 4 * d.len() as u64),
            Msg::Flush { .. } => 12,
            Msg::FlushAck => 8,
            Msg::LockReq { .. } => 13,
            Msg::LockGrant { grant, .. } => grant.wire_bytes(),
            Msg::LockRel { knowledge, dirty, .. } => {
                17 + 4 * knowledge.len() as u64 + 12 * dirty.len() as u64
            }
            Msg::BarrierArrive { knowledge, .. } => 16 + 4 * knowledge.len() as u64,
            Msg::BarrierRelease { knowledge, .. } => 12 + 4 * knowledge.len() as u64,
            Msg::ScRead { .. } => 12,
            Msg::ScReadResp { .. } => 24,
            Msg::ScWrite { .. } => 28,
            Msg::ScWriteAck => 8,
            Msg::ScAwait { .. } => 20,
            Msg::ScAwaitResp { writers, .. } => 16 + 8 * writers.len() as u64,
            // Session header: 8-byte sequence number on top of the payload.
            Msg::SessData { inner, .. } => 8 + inner.wire_bytes(),
            Msg::SessAck { .. } => 12,
        }
    }

    /// The metrics label of this message.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Update { .. } => "update",
            Msg::Flush { .. } => "flush",
            Msg::FlushAck => "flush_ack",
            Msg::LockReq { .. } => "lock_req",
            Msg::LockGrant { .. } => "lock_grant",
            Msg::LockRel { .. } => "lock_rel",
            Msg::BarrierArrive { .. } => "barrier_arrive",
            Msg::BarrierRelease { .. } => "barrier_release",
            Msg::ScRead { .. } => "sc_read",
            Msg::ScReadResp { .. } => "sc_read_resp",
            Msg::ScWrite { .. } => "sc_write",
            Msg::ScWriteAck => "sc_write_ack",
            Msg::ScAwait { .. } => "sc_await",
            Msg::ScAwaitResp { .. } => "sc_await_resp",
            Msg::SessData { .. } => "sess_data",
            Msg::SessAck { .. } => "session_ack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_bytes_depend_on_vectors() {
        let small = Msg::Update {
            writer: WriteId::new(ProcId(0), 1),
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(1)),
            deps: None,
        };
        let big = Msg::Update {
            writer: WriteId::new(ProcId(0), 1),
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(1)),
            deps: Some(VClock::new(8)),
        };
        assert_eq!(small.wire_bytes(), 24);
        assert_eq!(big.wire_bytes(), 24 + 32);
        assert_eq!(small.kind(), "update");
    }

    #[test]
    fn grant_bytes_scale_with_payload() {
        let mut g = GrantInfo::default();
        assert_eq!(g.wire_bytes(), 8);
        g.preds.push((ProcId(0), 3));
        g.demand.push((Loc(1), ProcId(0), 3));
        assert_eq!(g.wire_bytes(), 8 + 8 + 12);
    }

    #[test]
    fn all_kinds_are_labeled() {
        let msgs = [
            Msg::Flush { from_proc: ProcId(0), upto: 1 },
            Msg::FlushAck,
            Msg::LockReq { proc: ProcId(0), lock: LockId(0), mode: LockMode::Read },
            Msg::ScWriteAck,
        ];
        for m in msgs {
            assert!(!m.kind().is_empty());
            assert!(m.wire_bytes() > 0);
        }
    }
}
