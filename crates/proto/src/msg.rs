//! Wire messages of the DSM protocols.
//!
//! Payload byte sizes are *modeled* (they feed the simulator's latency and
//! byte counters) — the point the paper makes about PRAM is precisely that
//! its update messages need no vector timestamps, so the models differ per
//! mode.

use std::sync::Arc;

use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, VClock, Value, WriteId};

/// The payload of a memory update: overwrite or commutative increment
/// (the abstract-data-type extension of Section 5.3).
#[derive(Clone, Debug, PartialEq)]
pub enum UpdatePayload {
    /// Plain write `w(x)v`.
    Set(Value),
    /// Commutative `x += delta` (integer or float delta).
    Add(Value),
}

/// Everything a lock grant carries to the new holder.
#[derive(Clone, Debug, Default)]
pub struct GrantInfo {
    /// Accumulated knowledge vector of all previous critical sections
    /// (empty in PRAM mode).
    pub knowledge: VClock,
    /// The previous epoch's members with their own-write counts at release
    /// (the PRAM "immediately preceding process" information).
    pub preds: Vec<(ProcId, u32)>,
    /// Demand-driven invalidation set: locations written before earlier
    /// releases, with the required writer sequence number.
    pub demand: Vec<(Loc, ProcId, u32)>,
}

impl GrantInfo {
    /// Modeled wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 * self.knowledge.len() as u64
            + 8 * self.preds.len() as u64
            + 12 * self.demand.len() as u64
    }
}

/// One coalesced entry of a [`Msg::UpdateBatch`]: the surviving value
/// for a location after last-write-wins (`Set`) or summing (`Add`)
/// coalescing within the batch window.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchEntry {
    /// Location updated.
    pub loc: Loc,
    /// The coalesced payload: the last `Set`, or the summed `Add` delta.
    pub payload: UpdatePayload,
    /// The last member write coalesced into this entry (the surviving
    /// `last_writer` identity at the receiver).
    pub writer: WriteId,
    /// For `Add` entries: the own-sequence numbers of *every* member
    /// write, so the receiver can credit each writer identity to its
    /// counter (`await` on counters needs all of them, not just the
    /// last). Empty for `Set` entries.
    pub adds: Vec<u32>,
}

impl BatchEntry {
    /// Modeled wire size in bytes: location (4) + tagged payload (9:
    /// kind byte + 8-byte operand) + writer sequence (4) + member count
    /// (2) + padding (20 total; the writer's process id is implied by
    /// the enclosing batch header), plus 4 per extra coalesced `Add`
    /// member. Widened from the earlier modeled 16 when the binary
    /// codec made frames real: 16 bytes cannot physically hold the
    /// fields, and the model is pinned to what actually travels.
    pub fn wire_bytes(&self) -> u64 {
        20 + 4 * self.adds.len() as u64
    }
}

/// A protocol message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Replicated-memory update broadcast (Section 6). `deps` is the
    /// writer's vector timestamp in causal/mixed mode, `None` in PRAM
    /// mode.
    Update {
        /// Identity of the write.
        writer: WriteId,
        /// Location updated.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// Vector timestamp (causal/mixed only).
        deps: Option<VClock>,
    },
    /// A batch of coalesced updates from one process, covering its own
    /// writes `first_seq..=upto` in sequence order. Applied atomically
    /// at the receiver — indistinguishable, over a FIFO link, from the
    /// member [`Msg::Update`]s delivered back to back.
    UpdateBatch {
        /// The writing process.
        proc: ProcId,
        /// First own-write sequence number covered by this batch.
        first_seq: u32,
        /// Last own-write sequence number covered by this batch.
        upto: u32,
        /// Coalesced per-location entries, in batch-buffer order.
        /// Reference-counted so the per-peer broadcast fan-out and
        /// session retransmit copies share one buffer instead of deep-
        /// cloning the entries per peer.
        entries: Arc<[BatchEntry]>,
        /// Delta-compressed dependency clock (causal/mixed only): the
        /// components of the sender's vector timestamp *at the last
        /// member write* that changed since the previous update message
        /// on this directed link, as absolute values. The receiver
        /// reconstructs the full clock from its per-link shadow copy.
        /// `None` in PRAM mode.
        delta: Option<Vec<(ProcId, u32)>>,
        /// Piggybacked session acknowledgement for the reverse link —
        /// `(upto, epoch)`: highest in-order sequence number delivered,
        /// tagged with the receiver's link epoch so a pre-crash ack can
        /// never advance a reborn sender's watermark. Present only when
        /// the session layer is running.
        ack: Option<(u64, u64)>,
    },
    /// Eager unlock: "flush all updates" probe from a releasing process.
    Flush {
        /// The releasing process.
        from_proc: ProcId,
        /// Acknowledge once this many of its writes are applied.
        upto: u32,
    },
    /// Acknowledgement of a [`Msg::Flush`].
    FlushAck,
    /// Lock request to the manager.
    LockReq {
        /// Requesting process.
        proc: ProcId,
        /// Lock object.
        lock: LockId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Lock grant from the manager.
    LockGrant {
        /// Lock object.
        lock: LockId,
        /// Consistency payload.
        grant: GrantInfo,
    },
    /// Lock release to the manager.
    LockRel {
        /// Releasing process.
        proc: ProcId,
        /// Lock object.
        lock: LockId,
        /// Mode released.
        mode: LockMode,
        /// Releaser's knowledge vector (empty in PRAM mode).
        knowledge: VClock,
        /// Releaser's own-write count at release.
        own_count: u32,
        /// Demand-driven dirty set: locations this process wrote (latest
        /// own sequence number each) since its previous release of this
        /// lock.
        dirty: Vec<(Loc, u32)>,
    },
    /// Barrier arrival at the manager (carries the per-process knowledge
    /// vector — Section 6's message-count vector).
    BarrierArrive {
        /// Arriving process.
        proc: ProcId,
        /// Barrier object.
        barrier: BarrierId,
        /// Round index.
        round: u32,
        /// Arriving process's knowledge.
        knowledge: VClock,
    },
    /// Barrier release to every participant.
    BarrierRelease {
        /// Barrier object.
        barrier: BarrierId,
        /// Round index.
        round: u32,
        /// Merged knowledge of all participants.
        knowledge: VClock,
    },
    /// SC server: read request.
    ScRead {
        /// Requesting process.
        proc: ProcId,
        /// Location.
        loc: Loc,
    },
    /// SC server: read response.
    ScReadResp {
        /// Value at the server.
        value: Value,
        /// The write that produced it (None = initial).
        writer: Option<WriteId>,
    },
    /// SC server: write/update request.
    ScWrite {
        /// Identity of the write.
        writer: WriteId,
        /// Location.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
    },
    /// SC server: write acknowledgement.
    ScWriteAck,
    /// SC server: register an await watch.
    ScAwait {
        /// Requesting process.
        proc: ProcId,
        /// Location.
        loc: Loc,
        /// Value awaited.
        value: Value,
    },
    /// SC server: await satisfied.
    ScAwaitResp {
        /// The observed value.
        value: Value,
        /// The writes that produced it.
        writers: Vec<WriteId>,
    },
    /// Reliable-session wrapper (see [`crate::session`]): `inner` is the
    /// `seq`-th payload on its directed sender→receiver link within
    /// session epoch `epoch`.
    SessData {
        /// Per-link sequence number (first payload is 1).
        seq: u64,
        /// Session epoch: high 32 bits are the sender's persisted
        /// incarnation, low 32 bits a volatile reset counter. Strictly
        /// monotone per directed link across crashes, so a reborn node's
        /// link can never be confused with its pre-crash self.
        epoch: u64,
        /// The wrapped protocol message.
        inner: Box<Msg>,
    },
    /// Cumulative session acknowledgement: every payload with sequence
    /// number ≤ `upto` in epoch `epoch` on this link has been delivered
    /// in order.
    SessAck {
        /// Highest in-order sequence number delivered.
        upto: u64,
        /// The receiver's current epoch for this link. Senders ignore
        /// acks from any other epoch — a pre-crash cumulative ack must
        /// never advance a post-crash watermark.
        epoch: u64,
    },
    /// Recovery bootstrap, broadcast by a reborn replica after replaying
    /// its disk. Always sent raw (never session-wrapped): it is the
    /// message that resets the session.
    RecoverReq {
        /// The reborn process.
        proc: ProcId,
        /// Its new (post-bump) incarnation.
        incarnation: u32,
        /// Its applied vector after snapshot+log replay: peers answer
        /// with only the missing delta.
        applied: VClock,
    },
    /// A peer's answer to [`Msg::RecoverReq`]: the suffix of the peer's
    /// own writes the reborn replica is missing, batched.
    RecoverResp {
        /// The responding process.
        proc: ProcId,
        /// First own-write sequence covered (`applied[proc] + 1` from
        /// the request).
        first_seq: u32,
        /// Last own-write sequence covered (the peer's own count).
        upto: u32,
        /// One entry per missing own write, in sequence order.
        entries: Vec<BatchEntry>,
        /// Dependency vector of the last member (vector modes only).
        deps: Option<VClock>,
        /// How many of the *reborn* process's own writes the responder
        /// has applied — the reborn side pushes back its own suffix
        /// after this point.
        seen: u32,
    },
    /// Sharded-replication update, multicast only to the subscribers of
    /// its shard. Dependencies are a *sparse per-shard clock*: triples
    /// `(shard, proc, seq)` naming the latest write per writer per shard
    /// the sender had applied when it wrote — O(interested replicas) on
    /// the wire instead of O(cluster).
    ShardUpdate {
        /// Identity of the write (sequence numbers are global per
        /// process, shared with the full-replication protocol).
        writer: WriteId,
        /// Location updated.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// The writer's previous own sequence number *in this shard*
        /// (0 if this is its first write there) — the per-shard FIFO
        /// chain receivers apply in order.
        prev: u32,
        /// Sparse per-shard dependency clock (empty in PRAM mode).
        deps: Vec<(u32, ProcId, u32)>,
    },
    /// A per-shard batch of coalesced sharded updates from one process;
    /// also the carrier of recovery and subscription backfills. Entries
    /// chain from `prev` (the writer's own sequence in the shard before
    /// the first member) to `upto`.
    ShardUpdateBatch {
        /// The writing process.
        proc: ProcId,
        /// The shard every entry belongs to.
        shard: u32,
        /// The writer's own sequence in this shard before the batch.
        prev: u32,
        /// Last own-write sequence covered by the batch.
        upto: u32,
        /// Coalesced per-location entries, in batch-buffer order.
        /// Reference-counted for the same fan-out sharing as
        /// [`Msg::UpdateBatch`].
        entries: Arc<[BatchEntry]>,
        /// Sparse per-shard dependency clock of the last member (empty
        /// in PRAM mode).
        deps: Vec<(u32, ProcId, u32)>,
    },
    /// Directory: subscribe `proc` to `shard` (dynamic first-touch).
    SubReq {
        /// The subscribing process.
        proc: ProcId,
        /// The shard of interest.
        shard: u32,
    },
    /// Directory answer to [`Msg::SubReq`]: the current subscriber set,
    /// unblocking the requester's first-touch access.
    SubAck {
        /// The shard subscribed.
        shard: u32,
        /// Every subscriber (including the requester).
        subs: Vec<ProcId>,
    },
    /// Directory notification to existing subscribers of `shard`: `proc`
    /// has joined. Each existing subscriber adds `proc` to its multicast
    /// set and pushes its *own* write suffix for the shard directly, so
    /// no third party's state is needed to close the join window.
    SubNotify {
        /// The shard joined.
        shard: u32,
        /// The new subscriber.
        proc: ProcId,
    },
    /// Sharded recovery bootstrap: like [`Msg::RecoverReq`] but carrying
    /// the reborn replica's *per-shard* applied clock, sent only to
    /// peers sharing at least one shard. Peers answer per shared shard,
    /// so recovery re-fetches only subscribed state.
    ShardRecoverReq {
        /// The reborn process.
        proc: ProcId,
        /// Its new (post-bump) incarnation.
        incarnation: u32,
        /// Sparse per-shard applied clock after log replay.
        applied: Vec<(u32, ProcId, u32)>,
    },
    /// A peer's per-shard answer to [`Msg::ShardRecoverReq`]: watermark
    /// metadata for one shared shard, plus how much of the reborn
    /// process's writes to that shard the responder has seen (the
    /// reborn side pushes back its own suffix past that point). The
    /// responder's missing writes travel separately as individual
    /// [`Msg::ShardUpdate`]s interleaved across shards in global
    /// sequence order — one atomic chain per shard can deadlock when
    /// two chains carry dependency triples into each other's shards.
    ShardRecoverResp {
        /// The responding process.
        proc: ProcId,
        /// The shared shard this answer covers.
        shard: u32,
        /// The responder's own sequence in the shard as known to the
        /// requester (chain start of `entries`).
        prev: u32,
        /// The responder's own sequence in the shard now.
        upto: u32,
        /// One entry per missing own write, in sequence order (empty in
        /// the metadata-only answers current senders emit).
        entries: Vec<BatchEntry>,
        /// Sparse per-shard dependency clock of the last member.
        deps: Vec<(u32, ProcId, u32)>,
        /// The responder's applied sequence for the *reborn* process in
        /// this shard.
        seen: u32,
    },
}

impl Msg {
    /// Modeled wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Update { deps, .. } => 24 + deps.as_ref().map_or(0, |d| 4 * d.len() as u64),
            // Batch header: proc + first_seq + upto + entry count (16),
            // then the entries, 8 per transmitted clock-delta component,
            // and 16 for a piggybacked (upto, epoch) ack when present.
            Msg::UpdateBatch { entries, delta, ack, .. } => {
                16 + entries.iter().map(BatchEntry::wire_bytes).sum::<u64>()
                    + delta.as_ref().map_or(0, |d| 8 * d.len() as u64)
                    + ack.map_or(0, |_| 16)
            }
            Msg::Flush { .. } => 12,
            Msg::FlushAck => 8,
            Msg::LockReq { .. } => 13,
            // Lock-id header (8) on top of the grant payload — the
            // payload alone was counted before, undercounting every
            // grant by its header.
            Msg::LockGrant { grant, .. } => 8 + grant.wire_bytes(),
            Msg::LockRel { knowledge, dirty, .. } => {
                17 + 4 * knowledge.len() as u64 + 12 * dirty.len() as u64
            }
            Msg::BarrierArrive { knowledge, .. } => 16 + 4 * knowledge.len() as u64,
            Msg::BarrierRelease { knowledge, .. } => 12 + 4 * knowledge.len() as u64,
            Msg::ScRead { .. } => 12,
            Msg::ScReadResp { .. } => 24,
            Msg::ScWrite { .. } => 28,
            Msg::ScWriteAck => 8,
            Msg::ScAwait { .. } => 20,
            Msg::ScAwaitResp { writers, .. } => 16 + 8 * writers.len() as u64,
            // Session header: 8-byte sequence number plus 8-byte epoch
            // on top of the payload.
            Msg::SessData { inner, .. } => 16 + inner.wire_bytes(),
            Msg::SessAck { .. } => 20,
            Msg::RecoverReq { applied, .. } => 16 + 4 * applied.len() as u64,
            Msg::RecoverResp { entries, deps, .. } => {
                24 + entries.iter().map(BatchEntry::wire_bytes).sum::<u64>()
                    + deps.as_ref().map_or(0, |d| 4 * d.len() as u64)
            }
            // Sharded update: 28 header (writer + loc + payload + prev)
            // + 12 per sparse dependency triple.
            Msg::ShardUpdate { deps, .. } => 28 + 12 * deps.len() as u64,
            // Sharded batch: 20 header (proc + shard + prev + upto +
            // count) + entries + 12 per dependency triple.
            Msg::ShardUpdateBatch { entries, deps, .. } => {
                20 + entries.iter().map(BatchEntry::wire_bytes).sum::<u64>()
                    + 12 * deps.len() as u64
            }
            Msg::SubReq { .. } | Msg::SubNotify { .. } => 12,
            Msg::SubAck { subs, .. } => 12 + 4 * subs.len() as u64,
            Msg::ShardRecoverReq { applied, .. } => 16 + 12 * applied.len() as u64,
            // Sharded recovery answer: 28 header (proc + shard + prev +
            // upto + seen + count) + entries + 12 per dependency triple.
            Msg::ShardRecoverResp { entries, deps, .. } => {
                28 + entries.iter().map(BatchEntry::wire_bytes).sum::<u64>()
                    + 12 * deps.len() as u64
            }
        }
    }

    /// The metrics label of this message.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Update { .. } => "update",
            Msg::UpdateBatch { .. } => "update_batch",
            Msg::Flush { .. } => "flush",
            Msg::FlushAck => "flush_ack",
            Msg::LockReq { .. } => "lock_req",
            Msg::LockGrant { .. } => "lock_grant",
            Msg::LockRel { .. } => "lock_rel",
            Msg::BarrierArrive { .. } => "barrier_arrive",
            Msg::BarrierRelease { .. } => "barrier_release",
            Msg::ScRead { .. } => "sc_read",
            Msg::ScReadResp { .. } => "sc_read_resp",
            Msg::ScWrite { .. } => "sc_write",
            Msg::ScWriteAck => "sc_write_ack",
            Msg::ScAwait { .. } => "sc_await",
            Msg::ScAwaitResp { .. } => "sc_await_resp",
            Msg::SessData { .. } => "sess_data",
            Msg::SessAck { .. } => "session_ack",
            Msg::RecoverReq { .. } => "recover_req",
            Msg::RecoverResp { .. } => "recover_resp",
            Msg::ShardUpdate { .. } => "shard_update",
            Msg::ShardUpdateBatch { .. } => "shard_update_batch",
            Msg::SubReq { .. } => "sub_req",
            Msg::SubAck { .. } => "sub_ack",
            Msg::SubNotify { .. } => "sub_notify",
            Msg::ShardRecoverReq { .. } => "shard_recover_req",
            Msg::ShardRecoverResp { .. } => "shard_recover_resp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_bytes_depend_on_vectors() {
        let small = Msg::Update {
            writer: WriteId::new(ProcId(0), 1),
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(1)),
            deps: None,
        };
        let big = Msg::Update {
            writer: WriteId::new(ProcId(0), 1),
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(1)),
            deps: Some(VClock::new(8)),
        };
        assert_eq!(small.wire_bytes(), 24);
        assert_eq!(big.wire_bytes(), 24 + 32);
        assert_eq!(small.kind(), "update");
    }

    #[test]
    fn grant_bytes_scale_with_payload() {
        let mut g = GrantInfo::default();
        assert_eq!(g.wire_bytes(), 8);
        g.preds.push((ProcId(0), 3));
        g.demand.push((Loc(1), ProcId(0), 3));
        assert_eq!(g.wire_bytes(), 8 + 8 + 12);
    }

    #[test]
    fn all_kinds_are_labeled() {
        let msgs = [
            Msg::Flush { from_proc: ProcId(0), upto: 1 },
            Msg::FlushAck,
            Msg::LockReq { proc: ProcId(0), lock: LockId(0), mode: LockMode::Read },
            Msg::ScWriteAck,
        ];
        for m in msgs {
            assert!(!m.kind().is_empty());
            assert!(m.wire_bytes() > 0);
        }
    }

    /// Pins the byte formula of *every* message variant: any change to
    /// the wire model must be deliberate (it shifts every bench
    /// baseline). Notably, `LockGrant` counts its 8-byte lock-id header
    /// on top of the grant payload — an earlier version dropped it.
    #[test]
    fn wire_bytes_pinned_for_every_variant() {
        let wid = WriteId::new(ProcId(1), 7);
        let vc = |n: usize| VClock::new(n);
        let set = UpdatePayload::Set(Value::Int(5));

        // Update: 24 header/payload + 4 per clock component.
        let m = Msg::Update { writer: wid, loc: Loc(2), payload: set.clone(), deps: None };
        assert_eq!(m.wire_bytes(), 24);
        let m = Msg::Update { writer: wid, loc: Loc(2), payload: set.clone(), deps: Some(vc(3)) };
        assert_eq!(m.wire_bytes(), 24 + 4 * 3);

        // UpdateBatch: 16 header + Σ entry (20 + 4·adds) + 8 per delta
        // component + 16 if an epoch-tagged ack rides along.
        let entries: Arc<[BatchEntry]> = vec![
            BatchEntry { loc: Loc(0), payload: set.clone(), writer: wid, adds: vec![] },
            BatchEntry {
                loc: Loc(1),
                payload: UpdatePayload::Add(Value::Int(3)),
                writer: wid,
                adds: vec![5, 6, 7],
            },
        ]
        .into();
        let m = Msg::UpdateBatch {
            proc: ProcId(1),
            first_seq: 5,
            upto: 7,
            entries: entries.clone(),
            delta: None,
            ack: None,
        };
        assert_eq!(m.wire_bytes(), 16 + 20 + (20 + 4 * 3));
        let m = Msg::UpdateBatch {
            proc: ProcId(1),
            first_seq: 5,
            upto: 7,
            entries,
            delta: Some(vec![(ProcId(1), 7), (ProcId(2), 4)]),
            ack: Some((9, 1 << 32)),
        };
        assert_eq!(m.wire_bytes(), 16 + 20 + (20 + 4 * 3) + 8 * 2 + 16);
        assert_eq!(m.kind(), "update_batch");

        assert_eq!(Msg::Flush { from_proc: ProcId(0), upto: 1 }.wire_bytes(), 12);
        assert_eq!(Msg::FlushAck.wire_bytes(), 8);
        assert_eq!(
            Msg::LockReq { proc: ProcId(0), lock: LockId(0), mode: LockMode::Write }.wire_bytes(),
            13
        );

        // LockGrant: 8-byte lock id + grant payload
        // (8 + 4·knowledge + 8·preds + 12·demand).
        let grant = GrantInfo {
            knowledge: vc(3),
            preds: vec![(ProcId(0), 2)],
            demand: vec![(Loc(1), ProcId(0), 2), (Loc(2), ProcId(1), 1)],
        };
        let m = Msg::LockGrant { lock: LockId(4), grant };
        assert_eq!(m.wire_bytes(), 8 + (8 + 4 * 3 + 8 + 12 * 2));
        let empty = Msg::LockGrant { lock: LockId(4), grant: GrantInfo::default() };
        assert_eq!(empty.wire_bytes(), 8 + 8, "grant header must include the lock id");

        // LockRel: 17 + 4·knowledge + 12·dirty.
        let m = Msg::LockRel {
            proc: ProcId(0),
            lock: LockId(1),
            mode: LockMode::Write,
            knowledge: vc(2),
            own_count: 4,
            dirty: vec![(Loc(0), 4)],
        };
        assert_eq!(m.wire_bytes(), 17 + 4 * 2 + 12);

        let m = Msg::BarrierArrive {
            proc: ProcId(0),
            barrier: mc_model::BarrierId(0),
            round: 1,
            knowledge: vc(2),
        };
        assert_eq!(m.wire_bytes(), 16 + 4 * 2);
        let m = Msg::BarrierRelease { barrier: mc_model::BarrierId(0), round: 1, knowledge: vc(2) };
        assert_eq!(m.wire_bytes(), 12 + 4 * 2);

        assert_eq!(Msg::ScRead { proc: ProcId(0), loc: Loc(0) }.wire_bytes(), 12);
        assert_eq!(
            Msg::ScReadResp { value: Value::Int(0), writer: None }.wire_bytes(),
            24,
            "responses reserve the writer-id slot whether or not it is filled"
        );
        assert_eq!(Msg::ScWrite { writer: wid, loc: Loc(0), payload: set }.wire_bytes(), 28);
        assert_eq!(Msg::ScWriteAck.wire_bytes(), 8);
        assert_eq!(
            Msg::ScAwait { proc: ProcId(0), loc: Loc(0), value: Value::Int(1) }.wire_bytes(),
            20
        );
        assert_eq!(
            Msg::ScAwaitResp { value: Value::Int(1), writers: vec![wid, wid] }.wire_bytes(),
            16 + 8 * 2
        );

        // Session wrapper: 8-byte sequence + 8-byte epoch header on the
        // inner payload.
        let m = Msg::SessData { seq: 3, epoch: 1 << 32, inner: Box::new(Msg::FlushAck) };
        assert_eq!(m.wire_bytes(), 16 + 8);
        assert_eq!(Msg::SessAck { upto: 3, epoch: 1 << 32 }.wire_bytes(), 20);

        // Recovery: 16-byte request header + 4 per applied component;
        // 24-byte response header + entries (20 + 4·adds each) + 4 per
        // deps component.
        let m = Msg::RecoverReq { proc: ProcId(2), incarnation: 3, applied: vc(3) };
        assert_eq!(m.wire_bytes(), 16 + 4 * 3);
        assert_eq!(m.kind(), "recover_req");
        let entries = vec![
            BatchEntry {
                loc: Loc(0),
                payload: UpdatePayload::Set(Value::Int(1)),
                writer: wid,
                adds: vec![],
            },
            BatchEntry {
                loc: Loc(1),
                payload: UpdatePayload::Add(Value::Int(2)),
                writer: wid,
                adds: vec![6, 7],
            },
        ];
        let m = Msg::RecoverResp {
            proc: ProcId(1),
            first_seq: 6,
            upto: 7,
            entries,
            deps: Some(vc(3)),
            seen: 2,
        };
        assert_eq!(m.wire_bytes(), 24 + 20 + (20 + 4 * 2) + 4 * 3);
        assert_eq!(m.kind(), "recover_resp");
        let m = Msg::RecoverResp {
            proc: ProcId(1),
            first_seq: 1,
            upto: 0,
            entries: vec![],
            deps: None,
            seen: 0,
        };
        assert_eq!(m.wire_bytes(), 24, "an empty delta costs only the header");

        // Sharded update: 28 header + 12 per sparse dependency triple —
        // the wire width tracks the *interest* set, never the cluster.
        let sdeps = vec![(0u32, ProcId(0), 3u32), (1, ProcId(2), 5)];
        let m = Msg::ShardUpdate {
            writer: wid,
            loc: Loc(2),
            payload: UpdatePayload::Set(Value::Int(5)),
            prev: 4,
            deps: sdeps.clone(),
        };
        assert_eq!(m.wire_bytes(), 28 + 12 * 2);
        assert_eq!(m.kind(), "shard_update");

        // Sharded batch: 20 header + entries (20 + 4·adds each) + 12 per
        // dependency triple.
        let entries = vec![BatchEntry {
            loc: Loc(0),
            payload: UpdatePayload::Set(Value::Int(1)),
            writer: wid,
            adds: vec![],
        }];
        let m = Msg::ShardUpdateBatch {
            proc: ProcId(1),
            shard: 0,
            prev: 2,
            upto: 7,
            entries: entries.clone().into(),
            deps: sdeps.clone(),
        };
        assert_eq!(m.wire_bytes(), 20 + 20 + 12 * 2);
        assert_eq!(m.kind(), "shard_update_batch");

        // Subscription traffic: fixed 12-byte requests/notifies, acks
        // carry 4 bytes per subscriber.
        assert_eq!(Msg::SubReq { proc: ProcId(0), shard: 1 }.wire_bytes(), 12);
        assert_eq!(Msg::SubNotify { shard: 1, proc: ProcId(0) }.wire_bytes(), 12);
        let m = Msg::SubAck { shard: 1, subs: vec![ProcId(0), ProcId(2), ProcId(3)] };
        assert_eq!(m.wire_bytes(), 12 + 4 * 3);
        assert_eq!(m.kind(), "sub_ack");

        // Sharded recovery: 16 + 12 per applied triple on the request;
        // 28 + entries + 12 per dependency triple on the answer.
        let m = Msg::ShardRecoverReq { proc: ProcId(2), incarnation: 3, applied: sdeps.clone() };
        assert_eq!(m.wire_bytes(), 16 + 12 * 2);
        assert_eq!(m.kind(), "shard_recover_req");
        let m = Msg::ShardRecoverResp {
            proc: ProcId(1),
            shard: 0,
            prev: 2,
            upto: 3,
            entries,
            deps: sdeps,
            seen: 1,
        };
        assert_eq!(m.wire_bytes(), 28 + 20 + 12 * 2);
        assert_eq!(m.kind(), "shard_recover_resp");
    }
}
