//! The manager node: lock manager, barrier manager, and (in SC mode) the
//! central memory server.
//!
//! Section 6: "Every lock is mapped to a process called the lock manager
//! which accepts the requests for locking and unlocking. Every barrier is
//! also mapped to a barrier manager: each process sends a message to this
//! manager upon reaching the barrier and the manager in turn signals the
//! processes to go ahead when all of them have reached the barrier."

use std::collections::{BTreeMap, HashMap, VecDeque};

use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, VClock, Value, WriteId};

use crate::config::{DsmConfig, LockPropagation};
use crate::msg::{GrantInfo, Msg, UpdatePayload};

/// State of one lock object at the manager.
#[derive(Debug, Default)]
struct LockState {
    /// Current holders (one writer, or any number of readers).
    holders: Vec<(ProcId, LockMode)>,
    /// FIFO wait queue.
    queue: VecDeque<(ProcId, LockMode)>,
    /// Knowledge merged from every release (empty length = PRAM mode).
    acc_knowledge: VClock,
    /// Releases of the epoch that most recently ended — the "immediately
    /// preceding process(es)" of the next grant.
    last_epoch: Vec<(ProcId, u32)>,
    /// Releases of the epoch currently in progress.
    cur_epoch_releases: Vec<(ProcId, u32)>,
    /// Demand-driven accumulated requirements: latest writer per location.
    demand_map: BTreeMap<Loc, (ProcId, u32)>,
}

impl LockState {
    fn write_held(&self) -> bool {
        self.holders.iter().any(|&(_, m)| m == LockMode::Write)
    }
}

/// The manager-node state.
#[derive(Debug)]
pub struct Manager {
    nprocs: usize,
    locks: HashMap<LockId, LockState>,
    /// Barrier arrivals per (object, round).
    arrivals: HashMap<(BarrierId, u32), Vec<(ProcId, VClock)>>,
    /// Shard-interest directory (sharded mode): current subscribers per
    /// shard, seeded lazily from the static interest sets and grown by
    /// dynamic first-touch subscriptions.
    shard_subs: HashMap<u32, Vec<ProcId>>,
    // --- SC server ---
    store: Vec<Value>,
    last_writer: Vec<Option<WriteId>>,
    counter_updates: HashMap<Loc, Vec<WriteId>>,
    watches: Vec<(ProcId, Loc, Value)>,
}

/// Messages the manager wants delivered, with destination *process* (the
/// caller translates to the process's replica node).
pub type Outbox = Vec<(ProcId, Msg)>;

impl Manager {
    /// Creates the manager for `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        Manager {
            nprocs,
            locks: HashMap::new(),
            arrivals: HashMap::new(),
            shard_subs: HashMap::new(),
            store: Vec::new(),
            last_writer: Vec::new(),
            counter_updates: HashMap::new(),
            watches: Vec::new(),
        }
    }

    // -------------------------------------------------------------- directory

    /// Handles a dynamic shard subscription request (first-touch
    /// fallback): registers `proc` as a subscriber of `shard`, acks it
    /// with the *pre-existing* subscriber list (each of those will push
    /// its own chain as backfill on the matching notify), and notifies
    /// those subscribers so their future updates multicast to `proc`
    /// too. A duplicate request (retransmission, or a reborn replica
    /// re-announcing its subscriptions) is acked with the current other
    /// subscribers and triggers no new notifications.
    pub fn sub_req(&mut self, proc: ProcId, shard: u32, cfg: &DsmConfig) -> Outbox {
        let sc = cfg.sharding.as_ref().expect("sub_req requires sharding");
        let nprocs = self.nprocs;
        let subs = self.shard_subs.entry(shard).or_insert_with(|| {
            (0..nprocs as u32).map(ProcId).filter(|&q| sc.subscribed(q, shard as usize)).collect()
        });
        let mut out = Vec::new();
        if subs.contains(&proc) {
            let others: Vec<ProcId> = subs.iter().copied().filter(|&q| q != proc).collect();
            out.push((proc, Msg::SubAck { shard, subs: others }));
        } else {
            let existing = subs.clone();
            subs.push(proc);
            out.push((proc, Msg::SubAck { shard, subs: existing.clone() }));
            for q in existing {
                out.push((q, Msg::SubNotify { shard, proc }));
            }
        }
        out
    }

    // ------------------------------------------------------------------ locks

    /// Handles a lock request; returns grants to send.
    pub fn lock_request(
        &mut self,
        proc: ProcId,
        lock: LockId,
        mode: LockMode,
        cfg: &DsmConfig,
    ) -> Outbox {
        let st = self.locks.entry(lock).or_default();
        let compatible = match mode {
            LockMode::Write => st.holders.is_empty(),
            LockMode::Read => !st.write_held(),
        };
        if compatible && st.queue.is_empty() {
            st.holders.push((proc, mode));
            vec![(proc, Self::grant_msg(st, lock, cfg))]
        } else {
            st.queue.push_back((proc, mode));
            Vec::new()
        }
    }

    /// Handles a lock release; returns grants to send.
    pub fn lock_release(
        &mut self,
        proc: ProcId,
        lock: LockId,
        knowledge: VClock,
        own_count: u32,
        dirty: Vec<(Loc, u32)>,
        cfg: &DsmConfig,
    ) -> Outbox {
        let st =
            self.locks.get_mut(&lock).unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        let pos = st
            .holders
            .iter()
            .position(|&(p, _)| p == proc)
            .unwrap_or_else(|| panic!("release by non-holder {proc} of {lock}"));
        st.holders.swap_remove(pos);
        st.cur_epoch_releases.push((proc, own_count));
        if !knowledge.is_empty() {
            if st.acc_knowledge.is_empty() {
                st.acc_knowledge = VClock::new(knowledge.len());
            }
            st.acc_knowledge.merge(&knowledge);
        }
        for (loc, seq) in dirty {
            st.demand_map.insert(loc, (proc, seq));
        }
        if st.holders.is_empty() {
            st.last_epoch = std::mem::take(&mut st.cur_epoch_releases);
            return Self::drain_queue(st, lock, cfg);
        }
        Vec::new()
    }

    fn drain_queue(st: &mut LockState, lock: LockId, cfg: &DsmConfig) -> Outbox {
        let mut out = Vec::new();
        // FIFO: grant the head; if it is a reader, batch all consecutive
        // readers behind it.
        if let Some(&(proc, mode)) = st.queue.front() {
            match mode {
                LockMode::Write => {
                    st.queue.pop_front();
                    st.holders.push((proc, mode));
                    out.push((proc, Self::grant_msg(st, lock, cfg)));
                }
                LockMode::Read => {
                    while let Some(&(p, m)) = st.queue.front() {
                        if m != LockMode::Read {
                            break;
                        }
                        st.queue.pop_front();
                        st.holders.push((p, m));
                        out.push((p, Self::grant_msg(st, lock, cfg)));
                    }
                }
            }
        }
        out
    }

    fn grant_msg(st: &LockState, lock: LockId, cfg: &DsmConfig) -> Msg {
        let demand = if cfg.lock_propagation == LockPropagation::DemandDriven {
            st.demand_map.iter().map(|(&l, &(p, s))| (l, p, s)).collect()
        } else {
            Vec::new()
        };
        Msg::LockGrant {
            lock,
            grant: GrantInfo {
                knowledge: st.acc_knowledge.clone(),
                preds: st.last_epoch.clone(),
                demand,
            },
        }
    }

    // ---------------------------------------------------------------- barrier

    /// Handles a barrier arrival; when every participant of the barrier's
    /// group has arrived, returns the releases (Section 3.1.2 allows
    /// sub-group barriers).
    pub fn barrier_arrive(
        &mut self,
        proc: ProcId,
        barrier: BarrierId,
        round: u32,
        knowledge: VClock,
        cfg: &DsmConfig,
    ) -> Outbox {
        let participants = cfg.barrier_participants(barrier);
        assert!(participants.contains(&proc), "{proc} is not a participant of {barrier}");
        let arrived = self.arrivals.entry((barrier, round)).or_default();
        assert!(
            arrived.iter().all(|&(p, _)| p != proc),
            "{proc} arrived twice at {barrier} round {round}"
        );
        arrived.push((proc, knowledge));
        if arrived.len() < participants.len() {
            return Vec::new();
        }
        let arrived = self.arrivals.remove(&(barrier, round)).expect("present");
        let mut merged =
            VClock::new(if arrived[0].1.is_empty() { self.nprocs } else { arrived[0].1.len() });
        for (_, k) in &arrived {
            if !k.is_empty() {
                merged.merge(k);
            }
        }
        participants
            .into_iter()
            .map(|p| (p, Msg::BarrierRelease { barrier, round, knowledge: merged.clone() }))
            .collect()
    }

    // -------------------------------------------------------------- SC server

    fn ensure_loc(&mut self, loc: Loc) {
        if loc.index() >= self.store.len() {
            self.store.resize(loc.index() + 1, Value::INITIAL);
            self.last_writer.resize(loc.index() + 1, None);
        }
    }

    /// The server's current value of `loc` without mutation (for result
    /// collection after a finished SC run).
    pub fn peek(&self, loc: Loc) -> Value {
        self.store.get(loc.index()).copied().unwrap_or(Value::INITIAL)
    }

    /// SC server read.
    pub fn sc_read(&mut self, proc: ProcId, loc: Loc) -> Outbox {
        self.ensure_loc(loc);
        vec![(
            proc,
            Msg::ScReadResp {
                value: self.store[loc.index()],
                writer: self.last_writer[loc.index()],
            },
        )]
    }

    /// SC server write/update; acknowledges and fires satisfied watches.
    pub fn sc_write(&mut self, writer: WriteId, loc: Loc, payload: UpdatePayload) -> Outbox {
        self.ensure_loc(loc);
        match payload {
            UpdatePayload::Set(v) => self.store[loc.index()] = v,
            UpdatePayload::Add(d) => {
                let cur = self.store[loc.index()];
                self.store[loc.index()] = cur.checked_add(d).unwrap_or_else(|| {
                    panic!("update delta kind mismatch at {loc} ({cur:?} += {d:?})")
                });
                self.counter_updates.entry(loc).or_default().push(writer);
            }
        }
        self.last_writer[loc.index()] = Some(writer);
        let mut out = vec![(writer.proc, Msg::ScWriteAck)];
        out.extend(self.fire_watches());
        out
    }

    /// SC server await registration.
    pub fn sc_await(&mut self, proc: ProcId, loc: Loc, value: Value) -> Outbox {
        self.ensure_loc(loc);
        if self.store[loc.index()] == value {
            let writers = self.sc_writers(loc);
            return vec![(proc, Msg::ScAwaitResp { value, writers })];
        }
        self.watches.push((proc, loc, value));
        Vec::new()
    }

    fn sc_writers(&self, loc: Loc) -> Vec<WriteId> {
        if let Some(ups) = self.counter_updates.get(&loc) {
            return ups.clone();
        }
        self.last_writer.get(loc.index()).copied().flatten().into_iter().collect()
    }

    fn fire_watches(&mut self) -> Outbox {
        let mut out = Vec::new();
        let mut remaining = Vec::new();
        for (proc, loc, value) in std::mem::take(&mut self.watches) {
            if self.store.get(loc.index()).copied().unwrap_or(Value::INITIAL) == value {
                let writers = self.sc_writers(loc);
                out.push((proc, Msg::ScAwaitResp { value, writers }));
            } else {
                remaining.push((proc, loc, value));
            }
        }
        self.watches = remaining;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    fn cfg() -> DsmConfig {
        DsmConfig::new(3, Mode::Mixed)
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn k(counts: &[u32]) -> VClock {
        counts.iter().copied().collect()
    }

    #[test]
    fn immediate_grant_when_free() {
        let mut m = Manager::new(3);
        let out = m.lock_request(p(0), LockId(0), LockMode::Write, &cfg());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, p(0));
        assert!(matches!(out[0].1, Msg::LockGrant { .. }));
    }

    #[test]
    fn writer_queues_behind_writer_and_gets_grant_on_release() {
        let mut m = Manager::new(3);
        let c = cfg();
        m.lock_request(p(0), LockId(0), LockMode::Write, &c);
        assert!(m.lock_request(p(1), LockId(0), LockMode::Write, &c).is_empty());
        let out = m.lock_release(p(0), LockId(0), k(&[2, 0, 0]), 2, vec![], &c);
        assert_eq!(out.len(), 1);
        let (to, Msg::LockGrant { grant, .. }) = &out[0] else { panic!() };
        assert_eq!(*to, p(1));
        assert_eq!(grant.preds, vec![(p(0), 2)]);
        assert_eq!(grant.knowledge, k(&[2, 0, 0]));
    }

    #[test]
    fn readers_batch_and_share() {
        let mut m = Manager::new(3);
        let c = cfg();
        m.lock_request(p(0), LockId(0), LockMode::Write, &c);
        assert!(m.lock_request(p(1), LockId(0), LockMode::Read, &c).is_empty());
        assert!(m.lock_request(p(2), LockId(0), LockMode::Read, &c).is_empty());
        let out = m.lock_release(p(0), LockId(0), k(&[1, 0, 0]), 1, vec![], &c);
        assert_eq!(out.len(), 2, "both readers granted together");
    }

    #[test]
    fn reader_joins_active_read_epoch() {
        let mut m = Manager::new(3);
        let c = cfg();
        assert_eq!(m.lock_request(p(0), LockId(0), LockMode::Read, &c).len(), 1);
        assert_eq!(m.lock_request(p(1), LockId(0), LockMode::Read, &c).len(), 1);
    }

    #[test]
    fn reader_does_not_jump_queued_writer() {
        let mut m = Manager::new(3);
        let c = cfg();
        m.lock_request(p(0), LockId(0), LockMode::Read, &c);
        assert!(m.lock_request(p(1), LockId(0), LockMode::Write, &c).is_empty());
        // A new reader must wait behind the writer (queue non-empty).
        assert!(m.lock_request(p(2), LockId(0), LockMode::Read, &c).is_empty());
        let out = m.lock_release(p(0), LockId(0), k(&[0, 0, 0]), 0, vec![], &c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, p(1), "writer first");
        let out = m.lock_release(p(1), LockId(0), k(&[0, 1, 0]), 1, vec![], &c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, p(2));
        // The reader's preds are the writer epoch.
        let (_, Msg::LockGrant { grant, .. }) = &out[0] else { panic!() };
        assert_eq!(grant.preds, vec![(p(1), 1)]);
    }

    #[test]
    fn demand_map_accumulates_latest() {
        let mut m = Manager::new(2);
        let c = DsmConfig::new(2, Mode::Pram).with_lock_propagation(LockPropagation::DemandDriven);
        m.lock_request(p(0), LockId(0), LockMode::Write, &c);
        m.lock_release(p(0), LockId(0), VClock::new(0), 2, vec![(Loc(0), 2)], &c);
        m.lock_request(p(1), LockId(0), LockMode::Write, &c.clone());
        let out =
            m.lock_release(p(1), LockId(0), VClock::new(0), 1, vec![(Loc(0), 1), (Loc(1), 1)], &c);
        assert!(out.is_empty());
        let out = m.lock_request(p(0), LockId(0), LockMode::Write, &c);
        let (_, Msg::LockGrant { grant, .. }) = &out[0] else { panic!() };
        assert_eq!(grant.demand.len(), 2);
        assert!(grant.demand.contains(&(Loc(0), p(1), 1)));
        assert!(grant.demand.contains(&(Loc(1), p(1), 1)));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut m = Manager::new(2);
        let c = cfg();
        m.lock_request(p(0), LockId(0), LockMode::Write, &c);
        m.lock_release(p(1), LockId(0), VClock::new(0), 0, vec![], &c);
    }

    #[test]
    fn barrier_releases_after_all_arrive() {
        let mut m = Manager::new(3);
        assert!(m.barrier_arrive(p(0), BarrierId(0), 0, k(&[1, 0, 0]), &cfg()).is_empty());
        assert!(m.barrier_arrive(p(2), BarrierId(0), 0, k(&[0, 0, 3]), &cfg()).is_empty());
        let out = m.barrier_arrive(p(1), BarrierId(0), 0, k(&[0, 2, 0]), &cfg());
        assert_eq!(out.len(), 3);
        for (_, msg) in &out {
            let Msg::BarrierRelease { knowledge, round, .. } = msg else { panic!() };
            assert_eq!(*round, 0);
            assert_eq!(*knowledge, k(&[1, 2, 3]), "merged knowledge");
        }
    }

    #[test]
    fn barrier_rounds_are_independent() {
        let mut m = Manager::new(2);
        let c = DsmConfig::new(2, Mode::Mixed);
        assert!(m.barrier_arrive(p(0), BarrierId(0), 0, k(&[0, 0]), &c).is_empty());
        assert!(m.barrier_arrive(p(0), BarrierId(0), 1, k(&[0, 0]), &c).is_empty());
        assert_eq!(m.barrier_arrive(p(1), BarrierId(0), 0, k(&[0, 0]), &c).len(), 2);
        assert_eq!(m.barrier_arrive(p(1), BarrierId(0), 1, k(&[0, 0]), &c).len(), 2);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut m = Manager::new(2);
        let c = DsmConfig::new(2, Mode::Mixed);
        m.barrier_arrive(p(0), BarrierId(0), 0, VClock::new(0), &c);
        m.barrier_arrive(p(0), BarrierId(0), 0, VClock::new(0), &c);
    }

    #[test]
    fn subgroup_barrier_releases_only_the_group() {
        let mut m = Manager::new(3);
        let c = DsmConfig::new(3, Mode::Mixed).with_barrier_group(BarrierId(1), vec![p(0), p(2)]);
        assert!(m.barrier_arrive(p(0), BarrierId(1), 0, k(&[1, 0, 0]), &c).is_empty());
        let out = m.barrier_arrive(p(2), BarrierId(1), 0, k(&[0, 0, 2]), &c);
        assert_eq!(out.len(), 2, "only the two group members are released");
        let procs: Vec<ProcId> = out.iter().map(|(p, _)| *p).collect();
        assert!(procs.contains(&p(0)) && procs.contains(&p(2)));
    }

    #[test]
    #[should_panic(expected = "not a participant")]
    fn outsider_arrival_panics() {
        let mut m = Manager::new(3);
        let c = DsmConfig::new(3, Mode::Mixed).with_barrier_group(BarrierId(1), vec![p(0), p(2)]);
        m.barrier_arrive(p(1), BarrierId(1), 0, VClock::new(0), &c);
    }

    #[test]
    fn sc_read_write_roundtrip() {
        let mut m = Manager::new(2);
        let w = WriteId::new(p(0), 1);
        let out = m.sc_write(w, Loc(0), UpdatePayload::Set(Value::Int(5)));
        assert!(matches!(out[0].1, Msg::ScWriteAck));
        let out = m.sc_read(p(1), Loc(0));
        let (_, Msg::ScReadResp { value, writer }) = &out[0] else { panic!() };
        assert_eq!(*value, Value::Int(5));
        assert_eq!(*writer, Some(w));
        // Unwritten location returns the initial value.
        let out = m.sc_read(p(1), Loc(9));
        let (_, Msg::ScReadResp { value, writer }) = &out[0] else { panic!() };
        assert_eq!(*value, Value::INITIAL);
        assert_eq!(*writer, None);
    }

    #[test]
    fn sc_await_fires_on_write() {
        let mut m = Manager::new(2);
        assert!(m.sc_await(p(1), Loc(0), Value::Int(3)).is_empty());
        let out = m.sc_write(WriteId::new(p(0), 1), Loc(0), UpdatePayload::Set(Value::Int(3)));
        assert_eq!(out.len(), 2, "ack + await response");
        assert!(out.iter().any(|(to, msg)| *to == p(1) && matches!(msg, Msg::ScAwaitResp { .. })));
    }

    #[test]
    fn sc_await_immediate_if_already_true() {
        let mut m = Manager::new(2);
        let out = m.sc_await(p(1), Loc(0), Value::INITIAL);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sc_counter_updates() {
        let mut m = Manager::new(2);
        m.sc_write(WriteId::new(p(0), 1), Loc(0), UpdatePayload::Add(Value::Int(-1)));
        let out = m.sc_write(WriteId::new(p(1), 1), Loc(0), UpdatePayload::Add(Value::Int(-1)));
        // value now -2
        let _ = out;
        let out = m.sc_read(p(0), Loc(0));
        let (_, Msg::ScReadResp { value, .. }) = &out[0] else { panic!() };
        assert_eq!(*value, Value::Int(-2));
        let out = m.sc_await(p(0), Loc(0), Value::Int(-2));
        let (_, Msg::ScAwaitResp { writers, .. }) = &out[0] else { panic!() };
        assert_eq!(writers.len(), 2);
    }
}
