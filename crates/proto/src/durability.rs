//! Durable storage for replicas: a per-replica write-ahead log plus
//! compacted snapshots.
//!
//! The paper's crash model is amnesia — a crashed process simply vanishes
//! and a restarted one re-earns the memory from its peers. This module
//! earns durability back from disk instead: every ingested update is
//! framed as a CRC-guarded [`WalRecord`] and appended to a log
//! (append-before-ack for own writes), and the log is periodically
//! compacted into a [`Snapshot`] of the full replica state. Recovery
//! replays `snapshot + log` and then fetches only the missing delta from
//! peers, so the bytes transferred on recovery are bounded by the log
//! tail, not the store size.
//!
//! Two backends share the codec: [`MemDisk`] models a disk inside the
//! deterministic simulator (with an explicit staged-vs-durable boundary so
//! crash points between append, fsync, and ack are explorable), and
//! [`FileDisk`] is the real thing for `mc-live` (append-only `wal.log`,
//! `sync_all` fsyncs, atomic tmp-then-rename snapshot installs).
//!
//! The log format is truncation-tolerant: decoding stops at the first
//! torn or corrupt frame and returns the valid prefix plus a
//! [`WalTail`] diagnostic — a corrupt record is never applied.

use std::fmt;
use std::fs;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

use mc_model::{Loc, ProcId, VClock, Value, WriteId};

use crate::msg::{BatchEntry, UpdatePayload};

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, no external deps.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`. Guards every WAL frame and the snapshot body.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// ---------------------------------------------------------------------------
// Durability policy
// ---------------------------------------------------------------------------

/// When to compact the write-ahead log into a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Compact after this many log records (simulator and live).
    pub snapshot_every: u32,
    /// Additionally compact on this wall-clock cadence (live only; the
    /// simulator's notion of time is logical, so it compacts by count).
    pub snapshot_interval_micros: u64,
    /// Group commit: own-write records are *staged* on append and the
    /// fsync is deferred to the next externalization point — an
    /// outgoing protocol send, or a local read/await returning — so
    /// many appends share one sync. The acked-write discipline weakens
    /// from "durable before the write returns" to "durable before
    /// anything can observe it": a crash can lose the tail of
    /// purely-local unobserved writes, but never a write another
    /// process (or a local read) acted on. Pairs naturally with update
    /// batching, which defers the sends themselves.
    pub group_commit: bool,
}

impl DurabilityPolicy {
    /// Snapshot after every `snapshot_every` log records, with the
    /// default wall-clock cadence for live clusters.
    pub fn new(snapshot_every: u32) -> Self {
        DurabilityPolicy { snapshot_every, ..Default::default() }
    }

    /// Enables (or disables) group commit; see
    /// [`DurabilityPolicy::group_commit`].
    pub fn with_group_commit(mut self, group_commit: bool) -> Self {
        self.group_commit = group_commit;
        self
    }
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            snapshot_every: 64,
            snapshot_interval_micros: 10_000,
            group_commit: false,
        }
    }
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// One write-ahead-log record. Records are written at *ingest* time (not
/// apply time), so replay feeds them back through the replica's normal
/// ingest machinery and the causal pending buffers reconstruct naturally.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A local write by the owning process (append-before-ack: this is
    /// fsynced before the write's outcome is acknowledged to the program).
    OwnWrite {
        /// Location written.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// Dependency vector minted at the write (vector modes only).
        deps: Option<VClock>,
    },
    /// A remote singleton update as ingested.
    Ingest {
        /// Identity of the remote write.
        writer: WriteId,
        /// Location written.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// The writer's vector timestamp (vector modes only).
        deps: Option<VClock>,
    },
    /// A remote coalesced batch as ingested.
    IngestBatch {
        /// The writing process.
        proc: ProcId,
        /// First own-write sequence covered.
        first_seq: u32,
        /// Last own-write sequence covered.
        upto: u32,
        /// Coalesced per-location entries.
        entries: Vec<BatchEntry>,
        /// Dependency vector of the last member (vector modes only).
        deps: Option<VClock>,
    },
    /// The replica's incarnation number, persisted (and fsynced) on every
    /// rebirth so stale pre-crash session state can never be mistaken for
    /// the reborn node's.
    Incarnation {
        /// The new incarnation.
        incarnation: u32,
    },
    /// A local write in sharded mode (chain link recomputed at replay).
    OwnWriteSharded {
        /// Location written.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// Sparse `(shard, proc, seq)` dependency triples.
        deps: Vec<(u32, ProcId, u32)>,
    },
    /// A remote sharded singleton update as ingested.
    IngestSharded {
        /// Identity of the remote write.
        writer: WriteId,
        /// Location written.
        loc: Loc,
        /// Overwrite or increment.
        payload: UpdatePayload,
        /// The writer's previous own seq in the target shard.
        prev: u32,
        /// Sparse `(shard, proc, seq)` dependency triples.
        deps: Vec<(u32, ProcId, u32)>,
    },
    /// A remote sharded chain (coalesced batch, recovery delta, or
    /// subscription backfill) as ingested.
    IngestShardChain {
        /// The writing process.
        proc: ProcId,
        /// The shard the chain lives in.
        shard: u32,
        /// Chain link before the first member.
        prev: u32,
        /// Last member's global seq.
        upto: u32,
        /// Chain entries (coalesced or one-per-write).
        entries: Vec<BatchEntry>,
        /// Dependency triples of the last member.
        deps: Vec<(u32, ProcId, u32)>,
        /// Whether the already-applied prefix may be trimmed at replay
        /// (uncoalesced recovery/backfill chains only).
        trim: bool,
    },
    /// A dynamic shard subscription, persisted so replay filters
    /// dependency triples with the same interest set it had live.
    Subscribe {
        /// The newly subscribed shard.
        shard: u32,
    },
}

/// How the tail of a write-ahead log ended during decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every frame decoded; the log ends on a record boundary.
    Clean,
    /// The last frame is incomplete (fewer bytes than its header
    /// promised, or a bare partial header) — the classic torn write.
    /// `at` is the byte offset where the torn frame starts.
    Torn {
        /// Byte offset of the start of the torn frame.
        at: usize,
    },
    /// A frame's CRC failed or its body was malformed. `at` is the byte
    /// offset where the corrupt frame starts. Nothing at or after `at`
    /// was decoded.
    Corrupt {
        /// Byte offset of the start of the corrupt frame.
        at: usize,
    },
}

impl WalTail {
    /// `true` when the log ended cleanly on a record boundary.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

// ---------------------------------------------------------------------------
// Byte-level codec helpers
// ---------------------------------------------------------------------------

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_value(b: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            b.push(0);
            b.extend_from_slice(&i.to_le_bytes());
        }
        Value::F64(f) => {
            b.push(1);
            b.extend_from_slice(&f.to_le_bytes());
        }
        Value::Bool(x) => {
            b.push(2);
            b.extend_from_slice(&(*x as u64).to_le_bytes());
        }
    }
}

fn put_payload(b: &mut Vec<u8>, p: &UpdatePayload) {
    match p {
        UpdatePayload::Set(v) => {
            b.push(0);
            put_value(b, v);
        }
        UpdatePayload::Add(v) => {
            b.push(1);
            put_value(b, v);
        }
    }
}

fn put_writer(b: &mut Vec<u8>, w: WriteId) {
    put_u32(b, w.proc.0);
    put_u32(b, w.seq);
}

fn put_clock(b: &mut Vec<u8>, c: &VClock) {
    put_u32(b, c.len() as u32);
    for (p, n) in c.iter() {
        let _ = p;
        put_u32(b, n);
    }
}

fn put_opt_clock(b: &mut Vec<u8>, c: &Option<VClock>) {
    match c {
        Some(c) => {
            b.push(1);
            put_clock(b, c);
        }
        None => b.push(0),
    }
}

fn put_triples(b: &mut Vec<u8>, t: &[(u32, ProcId, u32)]) {
    put_u32(b, t.len() as u32);
    for &(s, q, c) in t {
        put_u32(b, s);
        put_u32(b, q.0);
        put_u32(b, c);
    }
}

fn put_entry(b: &mut Vec<u8>, e: &BatchEntry) {
    put_u32(b, e.loc.0);
    put_payload(b, &e.payload);
    put_writer(b, e.writer);
    put_u32(b, e.adds.len() as u32);
    for &s in &e.adds {
        put_u32(b, s);
    }
}

/// Bounded cursor over an encoded body; every getter fails (None) on
/// truncation instead of panicking, so corruption surfaces as a decode
/// error rather than a crash.
struct Rd<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, i: 0 }
    }

    fn done(&self) -> bool {
        self.i == self.b.len()
    }

    /// Bytes left in the buffer. Every element-count read from the wire
    /// is clamped against this before any allocation or loop, so a
    /// corrupted length field near `u32::MAX` fails the decode instead
    /// of attempting a huge reservation.
    fn remaining(&self) -> usize {
        self.b.len() - self.i
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.i.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn value(&mut self) -> Option<Value> {
        let tag = self.u8()?;
        let raw = self.u64()?;
        match tag {
            0 => Some(Value::Int(raw as i64)),
            1 => Some(Value::F64(f64::from_bits(raw))),
            2 => Some(Value::Bool(raw != 0)),
            _ => None,
        }
    }

    fn payload(&mut self) -> Option<UpdatePayload> {
        match self.u8()? {
            0 => Some(UpdatePayload::Set(self.value()?)),
            1 => Some(UpdatePayload::Add(self.value()?)),
            _ => None,
        }
    }

    fn writer(&mut self) -> Option<WriteId> {
        let proc = ProcId(self.u32()?);
        let seq = self.u32()?;
        Some(WriteId { proc, seq })
    }

    fn clock(&mut self) -> Option<VClock> {
        let len = self.u32()? as usize;
        // A clock component is 4 bytes; refuse lengths the buffer cannot hold.
        if len > self.remaining() / 4 {
            return None;
        }
        let mut c = VClock::new(len);
        for i in 0..len {
            c.set(ProcId(i as u32), self.u32()?);
        }
        Some(c)
    }

    fn opt_clock(&mut self) -> Option<Option<VClock>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.clock()?)),
            _ => None,
        }
    }

    fn entry(&mut self) -> Option<BatchEntry> {
        let loc = Loc(self.u32()?);
        let payload = self.payload()?;
        let writer = self.writer()?;
        let n = self.u32()? as usize;
        if n > self.remaining() / 4 {
            return None;
        }
        let mut adds = Vec::with_capacity(n);
        for _ in 0..n {
            adds.push(self.u32()?);
        }
        Some(BatchEntry { loc, payload, writer, adds })
    }

    fn triples(&mut self) -> Option<Vec<(u32, ProcId, u32)>> {
        let n = self.u32()? as usize;
        // A triple is 12 bytes on the wire.
        if n > self.remaining() / 12 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u32()?, ProcId(self.u32()?), self.u32()?));
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// WAL record framing
// ---------------------------------------------------------------------------

const TAG_OWN_WRITE: u8 = 1;
const TAG_INGEST: u8 = 2;
const TAG_INGEST_BATCH: u8 = 3;
const TAG_INCARNATION: u8 = 4;
const TAG_OWN_WRITE_SHARDED: u8 = 5;
const TAG_INGEST_SHARDED: u8 = 6;
const TAG_INGEST_SHARD_CHAIN: u8 = 7;
const TAG_SUBSCRIBE: u8 = 8;

impl WalRecord {
    /// Encodes the record body (tag + fields, little-endian, no frame).
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            WalRecord::OwnWrite { loc, payload, deps } => {
                b.push(TAG_OWN_WRITE);
                put_u32(&mut b, loc.0);
                put_payload(&mut b, payload);
                put_opt_clock(&mut b, deps);
            }
            WalRecord::Ingest { writer, loc, payload, deps } => {
                b.push(TAG_INGEST);
                put_writer(&mut b, *writer);
                put_u32(&mut b, loc.0);
                put_payload(&mut b, payload);
                put_opt_clock(&mut b, deps);
            }
            WalRecord::IngestBatch { proc, first_seq, upto, entries, deps } => {
                b.push(TAG_INGEST_BATCH);
                put_u32(&mut b, proc.0);
                put_u32(&mut b, *first_seq);
                put_u32(&mut b, *upto);
                put_u32(&mut b, entries.len() as u32);
                for e in entries {
                    put_entry(&mut b, e);
                }
                put_opt_clock(&mut b, deps);
            }
            WalRecord::Incarnation { incarnation } => {
                b.push(TAG_INCARNATION);
                put_u32(&mut b, *incarnation);
            }
            WalRecord::OwnWriteSharded { loc, payload, deps } => {
                b.push(TAG_OWN_WRITE_SHARDED);
                put_u32(&mut b, loc.0);
                put_payload(&mut b, payload);
                put_triples(&mut b, deps);
            }
            WalRecord::IngestSharded { writer, loc, payload, prev, deps } => {
                b.push(TAG_INGEST_SHARDED);
                put_writer(&mut b, *writer);
                put_u32(&mut b, loc.0);
                put_payload(&mut b, payload);
                put_u32(&mut b, *prev);
                put_triples(&mut b, deps);
            }
            WalRecord::IngestShardChain { proc, shard, prev, upto, entries, deps, trim } => {
                b.push(TAG_INGEST_SHARD_CHAIN);
                put_u32(&mut b, proc.0);
                put_u32(&mut b, *shard);
                put_u32(&mut b, *prev);
                put_u32(&mut b, *upto);
                put_u32(&mut b, entries.len() as u32);
                for e in entries {
                    put_entry(&mut b, e);
                }
                put_triples(&mut b, deps);
                b.push(*trim as u8);
            }
            WalRecord::Subscribe { shard } => {
                b.push(TAG_SUBSCRIBE);
                put_u32(&mut b, *shard);
            }
        }
        b
    }

    /// Encodes one framed record: `len:u32 | crc:u32 | body`, with the
    /// CRC covering the body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(8 + body.len());
        put_u32(&mut out, body.len() as u32);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let mut r = Rd::new(body);
        let rec = match r.u8()? {
            TAG_OWN_WRITE => {
                let loc = Loc(r.u32()?);
                let payload = r.payload()?;
                let deps = r.opt_clock()?;
                WalRecord::OwnWrite { loc, payload, deps }
            }
            TAG_INGEST => {
                let writer = r.writer()?;
                let loc = Loc(r.u32()?);
                let payload = r.payload()?;
                let deps = r.opt_clock()?;
                WalRecord::Ingest { writer, loc, payload, deps }
            }
            TAG_INGEST_BATCH => {
                let proc = ProcId(r.u32()?);
                let first_seq = r.u32()?;
                let upto = r.u32()?;
                let n = r.u32()? as usize;
                // An entry is at least 17 bytes (loc + payload + writer
                // + adds count); clamp loosely to the remaining buffer.
                if n > r.remaining() / 17 {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(r.entry()?);
                }
                let deps = r.opt_clock()?;
                WalRecord::IngestBatch { proc, first_seq, upto, entries, deps }
            }
            TAG_INCARNATION => WalRecord::Incarnation { incarnation: r.u32()? },
            TAG_OWN_WRITE_SHARDED => {
                let loc = Loc(r.u32()?);
                let payload = r.payload()?;
                let deps = r.triples()?;
                WalRecord::OwnWriteSharded { loc, payload, deps }
            }
            TAG_INGEST_SHARDED => {
                let writer = r.writer()?;
                let loc = Loc(r.u32()?);
                let payload = r.payload()?;
                let prev = r.u32()?;
                let deps = r.triples()?;
                WalRecord::IngestSharded { writer, loc, payload, prev, deps }
            }
            TAG_INGEST_SHARD_CHAIN => {
                let proc = ProcId(r.u32()?);
                let shard = r.u32()?;
                let prev = r.u32()?;
                let upto = r.u32()?;
                let n = r.u32()? as usize;
                if n > r.remaining() / 17 {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(r.entry()?);
                }
                let deps = r.triples()?;
                let trim = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                WalRecord::IngestShardChain { proc, shard, prev, upto, entries, deps, trim }
            }
            TAG_SUBSCRIBE => WalRecord::Subscribe { shard: r.u32()? },
            _ => return None,
        };
        if !r.done() {
            return None;
        }
        Some(rec)
    }
}

/// Decodes a write-ahead log into its valid record prefix plus a tail
/// diagnostic. Decoding stops at the first frame that is incomplete
/// ([`WalTail::Torn`]) or fails its CRC / body parse
/// ([`WalTail::Corrupt`]); records before that point are always returned.
pub fn decode_wal(bytes: &[u8]) -> (Vec<WalRecord>, WalTail) {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes.len() - i < 8 {
            return (out, WalTail::Torn { at: i });
        }
        let len = u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[i + 4..i + 8].try_into().unwrap());
        let Some(end) = i.checked_add(8).and_then(|s| s.checked_add(len)) else {
            return (out, WalTail::Torn { at: i });
        };
        if end > bytes.len() {
            // Could be a torn append or a corrupted length field; either
            // way the valid prefix is everything before this frame.
            return (out, WalTail::Torn { at: i });
        }
        let body = &bytes[i + 8..end];
        if crc32(body) != crc {
            return (out, WalTail::Corrupt { at: i });
        }
        match WalRecord::decode_body(body) {
            Some(rec) => out.push(rec),
            None => return (out, WalTail::Corrupt { at: i }),
        }
        i = end;
    }
    (out, WalTail::Clean)
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A buffered (causally not yet ready) singleton update, as persisted in
/// a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapPending {
    /// Identity of the write.
    pub writer: WriteId,
    /// Location.
    pub loc: Loc,
    /// Overwrite or increment.
    pub payload: UpdatePayload,
    /// The writer's vector timestamp.
    pub deps: VClock,
}

/// A buffered (causally not yet ready) batch, as persisted in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapBatch {
    /// The writing process.
    pub proc: ProcId,
    /// First own-write sequence covered.
    pub first_seq: u32,
    /// Last own-write sequence covered.
    pub upto: u32,
    /// Coalesced per-location entries.
    pub entries: Vec<BatchEntry>,
    /// Dependency vector of the last member.
    pub deps: VClock,
}

/// One of this replica's own writes, retained (with its dependency
/// vector) so a reborn peer can be pushed exactly the suffix it misses —
/// even past log compaction.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnUpdate {
    /// Own-write sequence number (1-based).
    pub seq: u32,
    /// Location written.
    pub loc: Loc,
    /// Overwrite or increment.
    pub payload: UpdatePayload,
    /// Dependency vector minted at the write (vector modes only).
    pub deps: Option<VClock>,
}

/// A compacted image of one replica: everything `snapshot + empty log`
/// must reproduce. Installing a snapshot truncates the write-ahead log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Replica incarnation at snapshot time.
    pub incarnation: u32,
    /// The applied vector.
    pub applied: VClock,
    /// Non-initial store contents: `(loc, value, last_writer)`.
    pub store: Vec<(Loc, Value, Option<WriteId>)>,
    /// Applied updates per counter location.
    pub counter_updates: Vec<(Loc, Vec<WriteId>)>,
    /// Every own write `(loc, seq)` in order (demand-driven bookkeeping).
    pub write_log: Vec<(Loc, u32)>,
    /// Full own-write history with dependency vectors (recovery push-back).
    pub own_updates: Vec<OwnUpdate>,
    /// Buffered singleton updates.
    pub pending: Vec<SnapPending>,
    /// Buffered batches.
    pub pending_batches: Vec<SnapBatch>,
    /// Session receiver watermarks per peer (in-order delivered counts),
    /// kept for post-recovery diagnostics.
    pub watermarks: Vec<(ProcId, u64)>,
}

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The magic prefix is wrong — not a snapshot file.
    BadMagic,
    /// Fewer bytes than the header promised.
    Truncated,
    /// The body CRC failed.
    BadCrc,
    /// The CRC passed but the body did not parse (codec bug or a
    /// collision-grade corruption).
    Malformed,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic (not a snapshot file)"),
            SnapshotError::Truncated => write!(f, "snapshot: truncated"),
            SnapshotError::BadCrc => write!(f, "snapshot: body CRC mismatch"),
            SnapshotError::Malformed => write!(f, "snapshot: malformed body"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const SNAP_MAGIC: &[u8; 8] = b"MCSNAP01";

impl Snapshot {
    /// Encodes the snapshot: `magic | len:u32 | crc:u32 | body`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.incarnation);
        put_clock(&mut b, &self.applied);
        put_u32(&mut b, self.store.len() as u32);
        for &(loc, v, w) in &self.store {
            put_u32(&mut b, loc.0);
            put_value(&mut b, &v);
            match w {
                Some(w) => {
                    b.push(1);
                    put_writer(&mut b, w);
                }
                None => b.push(0),
            }
        }
        put_u32(&mut b, self.counter_updates.len() as u32);
        for (loc, ws) in &self.counter_updates {
            put_u32(&mut b, loc.0);
            put_u32(&mut b, ws.len() as u32);
            for &w in ws {
                put_writer(&mut b, w);
            }
        }
        put_u32(&mut b, self.write_log.len() as u32);
        for &(loc, seq) in &self.write_log {
            put_u32(&mut b, loc.0);
            put_u32(&mut b, seq);
        }
        put_u32(&mut b, self.own_updates.len() as u32);
        for u in &self.own_updates {
            put_u32(&mut b, u.seq);
            put_u32(&mut b, u.loc.0);
            put_payload(&mut b, &u.payload);
            put_opt_clock(&mut b, &u.deps);
        }
        put_u32(&mut b, self.pending.len() as u32);
        for p in &self.pending {
            put_writer(&mut b, p.writer);
            put_u32(&mut b, p.loc.0);
            put_payload(&mut b, &p.payload);
            put_clock(&mut b, &p.deps);
        }
        put_u32(&mut b, self.pending_batches.len() as u32);
        for pb in &self.pending_batches {
            put_u32(&mut b, pb.proc.0);
            put_u32(&mut b, pb.first_seq);
            put_u32(&mut b, pb.upto);
            put_u32(&mut b, pb.entries.len() as u32);
            for e in &pb.entries {
                put_entry(&mut b, e);
            }
            put_clock(&mut b, &pb.deps);
        }
        put_u32(&mut b, self.watermarks.len() as u32);
        for &(p, d) in &self.watermarks {
            put_u32(&mut b, p.0);
            put_u64(&mut b, d);
        }

        let mut out = Vec::with_capacity(16 + b.len());
        out.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut out, b.len() as u32);
        put_u32(&mut out, crc32(&b));
        out.extend_from_slice(&b);
        out
    }

    /// Decodes a snapshot, validating magic, length, and CRC.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 16 {
            if bytes.len() >= 8 && &bytes[..8] != SNAP_MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..8] != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let Some(end) = 16usize.checked_add(len) else {
            return Err(SnapshotError::Truncated);
        };
        if end > bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let body = &bytes[16..end];
        if crc32(body) != crc {
            return Err(SnapshotError::BadCrc);
        }
        Self::decode_body(body).ok_or(SnapshotError::Malformed)
    }

    fn decode_body(body: &[u8]) -> Option<Snapshot> {
        let mut r = Rd::new(body);
        let incarnation = r.u32()?;
        let applied = r.clock()?;
        // Every element count below is clamped to what the remaining
        // buffer could possibly hold (divided by the element's minimum
        // wire size) before reserving or looping, so a corrupted count
        // near u32::MAX fails cleanly instead of allocating.
        let n = r.u32()? as usize;
        if n > r.remaining() / 14 {
            return None;
        }
        let mut store = Vec::with_capacity(n);
        for _ in 0..n {
            let loc = Loc(r.u32()?);
            let v = r.value()?;
            let w = match r.u8()? {
                0 => None,
                1 => Some(r.writer()?),
                _ => return None,
            };
            store.push((loc, v, w));
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 8 {
            return None;
        }
        let mut counter_updates = Vec::with_capacity(n);
        for _ in 0..n {
            let loc = Loc(r.u32()?);
            let m = r.u32()? as usize;
            if m > r.remaining() / 8 {
                return None;
            }
            let mut ws = Vec::with_capacity(m);
            for _ in 0..m {
                ws.push(r.writer()?);
            }
            counter_updates.push((loc, ws));
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 8 {
            return None;
        }
        let mut write_log = Vec::with_capacity(n);
        for _ in 0..n {
            write_log.push((Loc(r.u32()?), r.u32()?));
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 19 {
            return None;
        }
        let mut own_updates = Vec::with_capacity(n);
        for _ in 0..n {
            own_updates.push(OwnUpdate {
                seq: r.u32()?,
                loc: Loc(r.u32()?),
                payload: r.payload()?,
                deps: r.opt_clock()?,
            });
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 26 {
            return None;
        }
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push(SnapPending {
                writer: r.writer()?,
                loc: Loc(r.u32()?),
                payload: r.payload()?,
                deps: r.clock()?,
            });
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 20 {
            return None;
        }
        let mut pending_batches = Vec::with_capacity(n);
        for _ in 0..n {
            let proc = ProcId(r.u32()?);
            let first_seq = r.u32()?;
            let upto = r.u32()?;
            let m = r.u32()? as usize;
            if m > r.remaining() / 17 {
                return None;
            }
            let mut entries = Vec::with_capacity(m);
            for _ in 0..m {
                entries.push(r.entry()?);
            }
            let deps = r.clock()?;
            pending_batches.push(SnapBatch { proc, first_seq, upto, entries, deps });
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 12 {
            return None;
        }
        let mut watermarks = Vec::with_capacity(n);
        for _ in 0..n {
            watermarks.push((ProcId(r.u32()?), r.u64()?));
        }
        if !r.done() {
            return None;
        }
        Some(Snapshot {
            incarnation,
            applied,
            store,
            counter_updates,
            write_log,
            own_updates,
            pending,
            pending_batches,
            watermarks,
        })
    }
}

// ---------------------------------------------------------------------------
// Simulated disk
// ---------------------------------------------------------------------------

/// A simulated per-replica disk with an explicit staged-vs-durable
/// boundary: [`MemDisk::append`] stages a framed record, [`MemDisk::sync`]
/// makes the staged tail durable (the modeled fsync), and
/// [`MemDisk::crash`] drops whatever was staged — exactly the crash point
/// between append and fsync that the explorer injects.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemDisk {
    snapshot: Option<Vec<u8>>,
    log: Vec<u8>,
    staged: Vec<u8>,
    staged_records: u64,
}

impl MemDisk {
    /// An empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Stages one framed record (not yet durable).
    pub fn append(&mut self, frame: &[u8]) {
        self.staged.extend_from_slice(frame);
        self.staged_records += 1;
    }

    /// The modeled fsync: moves the staged tail into the durable log.
    /// Returns the number of records made durable.
    pub fn sync(&mut self) -> u64 {
        self.log.append(&mut self.staged);
        std::mem::take(&mut self.staged_records)
    }

    /// Number of staged (appended but not yet fsynced) records.
    pub fn staged_records(&self) -> u64 {
        self.staged_records
    }

    /// Atomically installs a snapshot and truncates the durable log.
    /// The caller must [`MemDisk::sync`] first — compaction must never
    /// silently discard staged records.
    pub fn install_snapshot(&mut self, bytes: Vec<u8>) {
        debug_assert_eq!(self.staged_records, 0, "sync before snapshotting");
        self.snapshot = Some(bytes);
        self.log.clear();
    }

    /// A crash: the staged tail is lost, the durable log and snapshot
    /// survive. Returns the number of records lost.
    pub fn crash(&mut self) -> u64 {
        self.staged.clear();
        std::mem::take(&mut self.staged_records)
    }

    /// What recovery reads: the installed snapshot (if any) and the
    /// durable log bytes.
    pub fn load(&self) -> (Option<&[u8]>, &[u8]) {
        (self.snapshot.as_deref(), &self.log)
    }

    /// Durable size in bytes (snapshot + log), for accounting.
    pub fn durable_bytes(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.len() as u64) + self.log.len() as u64
    }

    /// Serializes the durable state (snapshot + log, staged excluded) into
    /// one image, for repro artifacts that capture disk contents.
    pub fn image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.snapshot {
            Some(s) => {
                out.push(1);
                put_u32(&mut out, s.len() as u32);
                out.extend_from_slice(s);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.log);
        out
    }

    /// Rebuilds a disk from an [`MemDisk::image`] (staged state is empty,
    /// as after a crash).
    pub fn from_image(bytes: &[u8]) -> Option<MemDisk> {
        let mut r = Rd::new(bytes);
        let snapshot = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                Some(r.take(n)?.to_vec())
            }
            _ => return None,
        };
        let log = bytes[r.i..].to_vec();
        Some(MemDisk { snapshot, log, staged: Vec::new(), staged_records: 0 })
    }
}

// ---------------------------------------------------------------------------
// Real files (mc-live)
// ---------------------------------------------------------------------------

/// A real per-replica disk directory for `mc-live`: an append-only
/// `wal.log` (made durable with `sync_all`) and a snapshot installed
/// atomically via write-tmp-then-rename. The staged-vs-durable boundary
/// here is the page cache: records appended but not yet fsynced may or
/// may not survive `kill -9`, and recovery tolerates either via the
/// truncation-tolerant decoder.
#[derive(Debug)]
pub struct FileDisk {
    dir: PathBuf,
    wal: fs::File,
    staged_records: u64,
}

impl FileDisk {
    /// Opens (creating if needed) the replica directory `dir`.
    pub fn open(dir: &Path) -> io::Result<FileDisk> {
        fs::create_dir_all(dir)?;
        let wal = fs::OpenOptions::new().create(true).append(true).open(dir.join("wal.log"))?;
        Ok(FileDisk { dir: dir.to_path_buf(), wal, staged_records: 0 })
    }

    /// The replica directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one framed record to `wal.log` (durable only after
    /// [`FileDisk::sync`]).
    pub fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.wal.write_all(frame)?;
        self.staged_records += 1;
        Ok(())
    }

    /// fsyncs the log. Returns the number of records covered by this sync.
    pub fn sync(&mut self) -> io::Result<u64> {
        self.wal.sync_all()?;
        Ok(std::mem::take(&mut self.staged_records))
    }

    /// Number of appended-but-not-fsynced records.
    pub fn staged_records(&self) -> u64 {
        self.staged_records
    }

    /// Atomically installs a snapshot (write `snapshot.tmp`, fsync,
    /// rename over `snapshot.bin`) and truncates `wal.log`.
    pub fn install_snapshot(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.wal.sync_all()?;
        self.staged_records = 0;
        let tmp = self.dir.join("snapshot.tmp");
        let fin = self.dir.join("snapshot.bin");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &fin)?;
        self.wal.set_len(0)?;
        self.wal.seek(io::SeekFrom::Start(0))?;
        self.wal.sync_all()?;
        Ok(())
    }

    /// What recovery reads from `dir`: the installed snapshot (if any)
    /// and the raw log bytes. Static so it runs before the directory is
    /// re-opened for writing by the reborn process.
    pub fn load(dir: &Path) -> io::Result<(Option<Vec<u8>>, Vec<u8>)> {
        let snap = match fs::File::open(dir.join("snapshot.bin")) {
            Ok(mut f) => {
                let mut b = Vec::new();
                f.read_to_end(&mut b)?;
                Some(b)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let log = match fs::File::open(dir.join("wal.log")) {
            Ok(mut f) => {
                let mut b = Vec::new();
                f.read_to_end(&mut b)?;
                b
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok((snap, log))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn sample_records() -> Vec<WalRecord> {
        let mut deps = VClock::new(3);
        deps.set(p(0), 2);
        deps.set(p(1), 1);
        vec![
            WalRecord::Incarnation { incarnation: 3 },
            WalRecord::OwnWrite {
                loc: Loc(4),
                payload: UpdatePayload::Set(Value::Int(-9)),
                deps: Some(deps.clone()),
            },
            WalRecord::OwnWrite {
                loc: Loc(0),
                payload: UpdatePayload::Add(Value::F64(0.5)),
                deps: None,
            },
            WalRecord::Ingest {
                writer: WriteId::new(p(1), 7),
                loc: Loc(2),
                payload: UpdatePayload::Set(Value::Bool(true)),
                deps: Some(deps.clone()),
            },
            WalRecord::IngestBatch {
                proc: p(2),
                first_seq: 1,
                upto: 3,
                entries: vec![BatchEntry {
                    loc: Loc(1),
                    payload: UpdatePayload::Add(Value::Int(3)),
                    writer: WriteId::new(p(2), 3),
                    adds: vec![1, 2, 3],
                }],
                deps: Some(deps),
            },
            WalRecord::OwnWriteSharded {
                loc: Loc(6),
                payload: UpdatePayload::Set(Value::Int(11)),
                deps: vec![(0, p(1), 2), (2, p(0), 5)],
            },
            WalRecord::IngestSharded {
                writer: WriteId::new(p(1), 4),
                loc: Loc(3),
                payload: UpdatePayload::Add(Value::Int(1)),
                prev: 2,
                deps: vec![(1, p(0), 3)],
            },
            WalRecord::IngestShardChain {
                proc: p(0),
                shard: 1,
                prev: 0,
                upto: 5,
                entries: vec![BatchEntry {
                    loc: Loc(5),
                    payload: UpdatePayload::Set(Value::Bool(false)),
                    writer: WriteId::new(p(0), 5),
                    adds: vec![],
                }],
                deps: vec![],
                trim: true,
            },
            WalRecord::Subscribe { shard: 3 },
        ]
    }

    fn encode_all(recs: &[WalRecord]) -> Vec<u8> {
        recs.iter().flat_map(|r| r.encode()).collect()
    }

    #[test]
    fn crc32_check_value() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_roundtrip_every_kind() {
        let recs = sample_records();
        let bytes = encode_all(&recs);
        let (decoded, tail) = decode_wal(&bytes);
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decoded, recs);
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let recs = sample_records();
        let bytes = encode_all(&recs);
        // Chop mid-way through the last frame.
        let cut = bytes.len() - 3;
        let (decoded, tail) = decode_wal(&bytes[..cut]);
        assert_eq!(decoded, recs[..recs.len() - 1]);
        assert!(matches!(tail, WalTail::Torn { .. }));
    }

    #[test]
    fn bit_flip_yields_corrupt_not_garbage() {
        let recs = sample_records();
        let mut bytes = encode_all(&recs);
        // Flip a bit inside the second record's body.
        let second_start = recs[0].encode().len();
        bytes[second_start + 10] ^= 0x40;
        let (decoded, tail) = decode_wal(&bytes);
        assert_eq!(decoded, recs[..1]);
        assert_eq!(tail, WalTail::Corrupt { at: second_start });
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut applied = VClock::new(2);
        applied.set(p(0), 4);
        let mut deps = VClock::new(2);
        deps.set(p(1), 1);
        let snap = Snapshot {
            incarnation: 2,
            applied,
            store: vec![
                (Loc(0), Value::Int(7), Some(WriteId::new(p(1), 1))),
                (Loc(3), Value::F64(1.5), None),
            ],
            counter_updates: vec![(Loc(0), vec![WriteId::new(p(0), 1), WriteId::new(p(1), 1)])],
            write_log: vec![(Loc(0), 1), (Loc(3), 2)],
            own_updates: vec![OwnUpdate {
                seq: 1,
                loc: Loc(0),
                payload: UpdatePayload::Add(Value::Int(4)),
                deps: Some(deps.clone()),
            }],
            pending: vec![SnapPending {
                writer: WriteId::new(p(1), 9),
                loc: Loc(5),
                payload: UpdatePayload::Set(Value::Bool(false)),
                deps: deps.clone(),
            }],
            pending_batches: vec![SnapBatch {
                proc: p(1),
                first_seq: 2,
                upto: 2,
                entries: vec![BatchEntry {
                    loc: Loc(1),
                    payload: UpdatePayload::Set(Value::Int(1)),
                    writer: WriteId::new(p(1), 2),
                    adds: vec![],
                }],
                deps,
            }],
            watermarks: vec![(p(1), 17)],
        };
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn snapshot_rejects_damage() {
        let snap = Snapshot { incarnation: 1, applied: VClock::new(2), ..Default::default() };
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes[..10]), Err(SnapshotError::Truncated));
        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert_eq!(Snapshot::decode(&magic), Err(SnapshotError::BadMagic));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(Snapshot::decode(&flipped), Err(SnapshotError::BadCrc));
    }

    #[test]
    fn memdisk_staged_vs_durable() {
        let mut d = MemDisk::new();
        let rec = WalRecord::Incarnation { incarnation: 1 }.encode();
        d.append(&rec);
        d.append(&rec);
        assert_eq!(d.staged_records(), 2);
        assert_eq!(d.load().1.len(), 0, "staged bytes are not durable");
        assert_eq!(d.sync(), 2);
        d.append(&rec);
        assert_eq!(d.crash(), 1, "the unsynced tail is lost");
        let (snap, log) = d.load();
        assert!(snap.is_none());
        let (recs, tail) = decode_wal(log);
        assert_eq!(recs.len(), 2);
        assert!(tail.is_clean());
    }

    #[test]
    fn memdisk_snapshot_truncates_log() {
        let mut d = MemDisk::new();
        d.append(&WalRecord::Incarnation { incarnation: 1 }.encode());
        d.sync();
        let snap = Snapshot { incarnation: 1, applied: VClock::new(1), ..Default::default() };
        d.install_snapshot(snap.encode());
        let (s, log) = d.load();
        assert!(log.is_empty());
        assert_eq!(Snapshot::decode(s.unwrap()).unwrap(), snap);
    }

    #[test]
    fn memdisk_image_roundtrip() {
        let mut d = MemDisk::new();
        d.append(&WalRecord::Incarnation { incarnation: 2 }.encode());
        d.sync();
        d.install_snapshot(
            Snapshot { incarnation: 2, applied: VClock::new(1), ..Default::default() }.encode(),
        );
        d.append(&WalRecord::Incarnation { incarnation: 3 }.encode());
        d.sync();
        d.append(&WalRecord::Incarnation { incarnation: 9 }.encode()); // staged: excluded
        let img = d.image();
        let back = MemDisk::from_image(&img).unwrap();
        assert_eq!(back.staged_records(), 0);
        let (s, log) = back.load();
        assert!(s.is_some());
        let (recs, tail) = decode_wal(log);
        assert!(tail.is_clean());
        assert_eq!(recs, vec![WalRecord::Incarnation { incarnation: 3 }]);
    }

    #[test]
    fn filedisk_roundtrip() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mc-filedisk-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut d = FileDisk::open(&dir).unwrap();
        d.append(&WalRecord::Incarnation { incarnation: 1 }.encode()).unwrap();
        assert_eq!(d.staged_records(), 1);
        assert_eq!(d.sync().unwrap(), 1);
        let snap = Snapshot { incarnation: 1, applied: VClock::new(2), ..Default::default() };
        d.install_snapshot(&snap.encode()).unwrap();
        d.append(
            &WalRecord::OwnWrite {
                loc: Loc(0),
                payload: UpdatePayload::Set(Value::Int(5)),
                deps: None,
            }
            .encode(),
        )
        .unwrap();
        d.sync().unwrap();
        drop(d);

        let (s, log) = FileDisk::load(&dir).unwrap();
        assert_eq!(Snapshot::decode(&s.unwrap()).unwrap(), snap);
        let (recs, tail) = decode_wal(&log);
        assert!(tail.is_clean());
        assert_eq!(recs.len(), 1, "snapshot install truncated the pre-snapshot log");

        // Re-open appends after the existing tail.
        let mut d = FileDisk::open(&dir).unwrap();
        d.append(&WalRecord::Incarnation { incarnation: 2 }.encode()).unwrap();
        d.sync().unwrap();
        drop(d);
        let (_, log) = FileDisk::load(&dir).unwrap();
        let (recs, tail) = decode_wal(&log);
        assert!(tail.is_clean());
        assert_eq!(recs.len(), 2);

        fs::remove_dir_all(&dir).unwrap();
    }
}
