//! Property tests for the replica layer: causal gating must make replica
//! state independent of network delivery order, and the PRAM fast path
//! must preserve per-sender order.

use proptest::prelude::*;

use mc_model::{Loc, ProcId, VClock, Value, WriteId};
use mc_proto::{Mode, Replica, UpdatePayload};

/// A generated write: `(writer, loc, value-id)`. Sequence numbers are
/// assigned per writer in order; dependency vectors make each writer's
/// stream depend on everything it "had seen" at generation time
/// (simulating causal tagging).
#[derive(Clone, Debug)]
struct GenWrite {
    writer: u32,
    loc: u32,
    value: i64,
}

fn gen_writes(nprocs: u32, max: usize) -> impl Strategy<Value = Vec<GenWrite>> {
    proptest::collection::vec((0..nprocs, 0..4u32), 1..=max).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (writer, loc))| GenWrite { writer, loc, value: 1000 + i as i64 })
            .collect()
    })
}

/// Tags the generated writes like the causal protocol would: each write's
/// dependency vector is the "global knowledge" at its generation point —
/// a worst-case (fully chained) causal history.
fn tag(writes: &[GenWrite], nprocs: usize) -> Vec<(WriteId, Loc, UpdatePayload, VClock)> {
    let mut knowledge = VClock::new(nprocs);
    let mut out = Vec::new();
    for w in writes {
        let writer = ProcId(w.writer);
        knowledge.tick(writer);
        out.push((
            WriteId::new(writer, knowledge.get(writer)),
            Loc(w.loc),
            UpdatePayload::Set(Value::Int(w.value)),
            knowledge.clone(),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Causal gating: any delivery permutation applies every update and
    /// converges to the same store as in-order delivery.
    #[test]
    fn causal_replicas_converge_under_any_delivery_order(
        writes in gen_writes(3, 14),
        perm_seed in any::<u64>(),
    ) {
        let nprocs = 4; // 3 writers + the observer
        let tagged = tag(&writes, nprocs);

        // Reference replica: in-order delivery.
        let mut reference = Replica::new(ProcId(3), nprocs);
        for (id, loc, payload, deps) in &tagged {
            reference.ingest(*id, *loc, payload.clone(), Some(deps.clone()), Mode::Causal);
        }
        prop_assert_eq!(reference.pending_len(), 0);

        // Observer replica: seeded shuffle.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut shuffled = tagged.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(perm_seed));
        let mut observer = Replica::new(ProcId(3), nprocs);
        for (id, loc, payload, deps) in &shuffled {
            observer.ingest(*id, *loc, payload.clone(), Some(deps.clone()), Mode::Causal);
        }

        prop_assert_eq!(observer.pending_len(), 0, "everything eventually applies");
        for l in 0..4u32 {
            prop_assert_eq!(
                observer.peek(Loc(l)),
                reference.peek(Loc(l)),
                "store diverged at x{} after reordering", l
            );
        }
        prop_assert!(observer.applied.dominates(&reference.applied));
        prop_assert!(reference.applied.dominates(&observer.applied));
    }

    /// With a fully chained causal history, the final value of every
    /// location is its globally *last* write — delivery order cannot
    /// resurrect older values through the causal gate.
    #[test]
    fn causal_final_values_are_the_newest_writes(
        writes in gen_writes(3, 12),
        perm_seed in any::<u64>(),
    ) {
        let nprocs = 4;
        let tagged = tag(&writes, nprocs);
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut shuffled = tagged.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(perm_seed));
        let mut r = Replica::new(ProcId(3), nprocs);
        for (id, loc, payload, deps) in &shuffled {
            r.ingest(*id, *loc, payload.clone(), Some(deps.clone()), Mode::Causal);
        }
        for l in 0..4u32 {
            let expect = writes.iter().rev().find(|w| w.loc == l).map(|w| w.value);
            match expect {
                Some(v) => prop_assert_eq!(r.peek(Loc(l)), Value::Int(v)),
                None => prop_assert_eq!(r.peek(Loc(l)), Value::INITIAL),
            }
        }
    }

    /// The PRAM fast path with per-sender in-order delivery: each
    /// location's final value comes from the (sender-wise) newest applied
    /// write of the sender that delivered last — and for single-writer
    /// locations it is exactly that writer's last value.
    #[test]
    fn pram_single_writer_locations_end_at_last_write(
        writes in gen_writes(1, 12),
    ) {
        let mut r = Replica::new(ProcId(1), 2);
        let mut seq = 0u32;
        for w in &writes {
            seq += 1;
            r.ingest(
                WriteId::new(ProcId(0), seq),
                Loc(w.loc),
                UpdatePayload::Set(Value::Int(w.value)),
                None,
                Mode::Pram,
            );
        }
        for l in 0..4u32 {
            let expect = writes.iter().rev().find(|w| w.loc == l).map(|w| w.value);
            match expect {
                Some(v) => prop_assert_eq!(r.peek(Loc(l)), Value::Int(v)),
                None => prop_assert_eq!(r.peek(Loc(l)), Value::INITIAL),
            }
        }
        prop_assert_eq!(r.applied.get(ProcId(0)), writes.len() as u32);
    }

    /// Counter deltas commute exactly (integers): any delivery order of
    /// increments yields the same sum at every replica.
    #[test]
    fn counter_deltas_commute(
        deltas in proptest::collection::vec(-5i64..=5, 1..12),
        perm_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let nprocs = 2;
        let tagged: Vec<_> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let mut deps = VClock::new(nprocs);
                deps.set(ProcId(0), i as u32 + 1);
                (WriteId::new(ProcId(0), i as u32 + 1), d, deps)
            })
            .collect();
        let mut shuffled = tagged.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(perm_seed));

        let mut r = Replica::new(ProcId(1), nprocs);
        for (id, d, deps) in &shuffled {
            r.ingest(
                *id,
                Loc(0),
                UpdatePayload::Add(Value::Int(*d)),
                Some(deps.clone()),
                Mode::Causal,
            );
        }
        let sum: i64 = deltas.iter().sum();
        prop_assert_eq!(r.peek(Loc(0)), Value::Int(sum));
        prop_assert_eq!(r.await_writers(Loc(0)).len(), deltas.len());
    }
}

#[test]
fn partial_delivery_blocks_only_the_gap() {
    // Deliver a writer's stream with one gap: everything after the gap
    // stays pending in causal mode until the gap fills.
    let nprocs = 2;
    let mut r = Replica::new(ProcId(1), nprocs);
    let mk = |seq: u32| {
        let mut deps = VClock::new(nprocs);
        deps.set(ProcId(0), seq);
        (WriteId::new(ProcId(0), seq), deps)
    };
    let (w1, d1) = mk(1);
    let (w2, d2) = mk(2);
    let (w3, d3) = mk(3);
    r.ingest(w1, Loc(0), UpdatePayload::Set(Value::Int(1)), Some(d1), Mode::Causal);
    r.ingest(w3, Loc(0), UpdatePayload::Set(Value::Int(3)), Some(d3), Mode::Causal);
    assert_eq!(r.peek(Loc(0)), Value::Int(1), "w3 gated behind the missing w2");
    assert_eq!(r.pending_len(), 1);
    r.ingest(w2, Loc(0), UpdatePayload::Set(Value::Int(2)), Some(d2), Mode::Causal);
    assert_eq!(r.peek(Loc(0)), Value::Int(3));
    assert_eq!(r.pending_len(), 0);
}
