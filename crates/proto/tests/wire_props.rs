//! Codec conformance: for *every* [`Msg`] variant, encode → decode is
//! the identity, and the encoded body length equals the modeled
//! [`Msg::wire_bytes`] byte for byte. The pinned-size test in `msg.rs`
//! keeps the *model* stable; this suite keeps the *codec* welded to it.

use std::sync::Arc;

use proptest::prelude::*;

use bytes::BytesMut;
use mc_model::{BarrierId, Loc, LockId, LockMode, ProcId, VClock, Value, WriteId};
use mc_proto::wire::{decode_frame, encode_frame, next_frame, Frame, FRAME_HEADER};
use mc_proto::{BatchEntry, GrantInfo, Msg, UpdatePayload};

fn roundtrip(msg: &Msg) {
    let mut buf = BytesMut::with_capacity(1024);
    encode_frame(&mut buf, msg);
    prop_assert_eq!(
        buf.len() as u64,
        FRAME_HEADER as u64 + msg.wire_bytes(),
        "encoded length must equal wire_bytes for {}",
        msg.kind()
    );
    let body = next_frame(&mut buf).expect("one complete frame");
    prop_assert!(buf.is_empty());
    let Frame::Msg(decoded) = decode_frame(&body).expect("decodes cleanly") else {
        panic!("protocol frame decoded as control");
    };
    // Msg intentionally has no PartialEq (clocks of different widths
    // compare by content elsewhere); the Debug form is a faithful
    // structural fingerprint for identity here.
    prop_assert_eq!(format!("{msg:?}"), format!("{decoded:?}"));
}

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(|i| Value::F64(i as f64 / 3.0)),
        any::<bool>().prop_map(Value::Bool),
    ]
    .boxed()
}

fn arb_payload() -> BoxedStrategy<UpdatePayload> {
    (any::<bool>(), arb_value())
        .prop_map(|(add, v)| if add { UpdatePayload::Add(v) } else { UpdatePayload::Set(v) })
        .boxed()
}

fn arb_vclock() -> BoxedStrategy<VClock> {
    proptest::collection::vec(0u32..100_000, 0..6)
        .prop_map(|counts| {
            let mut c = VClock::new(counts.len());
            for (i, n) in counts.into_iter().enumerate() {
                c.set(ProcId(i as u32), n);
            }
            c
        })
        .boxed()
}

fn arb_writer() -> BoxedStrategy<WriteId> {
    (0u32..8, 1u32..1_000_000).prop_map(|(p, seq)| WriteId::new(ProcId(p), seq)).boxed()
}

/// Entries of a batch from `proc`: the codec reconstructs each writer
/// from the batch header, so the invariant the protocol maintains
/// (entries are own writes) must hold in generated data too.
fn arb_entries(proc: u32) -> BoxedStrategy<Arc<[BatchEntry]>> {
    proptest::collection::vec(
        (0u32..64, arb_payload(), 1u32..100_000, proptest::collection::vec(any::<u32>(), 0..4)),
        0..5,
    )
    .prop_map(move |es| {
        es.into_iter()
            .map(|(loc, payload, seq, adds)| BatchEntry {
                loc: Loc(loc),
                payload,
                writer: WriteId::new(ProcId(proc), seq),
                adds,
            })
            .collect::<Vec<_>>()
            .into()
    })
    .boxed()
}

fn arb_triples() -> BoxedStrategy<Vec<(u32, ProcId, u32)>> {
    proptest::collection::vec((any::<u32>(), 0u32..8, any::<u32>()), 0..5)
        .prop_map(|ts| ts.into_iter().map(|(s, p, q)| (s, ProcId(p), q)).collect())
        .boxed()
}

fn arb_delta() -> BoxedStrategy<Option<Vec<(ProcId, u32)>>> {
    (any::<bool>(), proptest::collection::vec((0u32..8, any::<u32>()), 0..5))
        .prop_map(|(some, d)| some.then(|| d.into_iter().map(|(p, c)| (ProcId(p), c)).collect()))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn update_roundtrips(
        writer in arb_writer(),
        loc in 0u32..1024,
        payload in arb_payload(),
        deps in (any::<bool>(), arb_vclock()),
    ) {
        let deps = deps.0.then_some(deps.1);
        roundtrip(&Msg::Update { writer, loc: Loc(loc), payload, deps });
    }

    #[test]
    fn update_batch_roundtrips(
        proc in 0u32..8,
        seqs in (1u32..1000, 0u32..1000),
        entries_seed in 0u32..8,
        delta in arb_delta(),
        ack in (any::<bool>(), any::<u64>(), 0u64..u64::MAX),
    ) {
        let entries = {
            let mut rng = proptest::test_rng(entries_seed);
            arb_entries(proc).generate(&mut rng)
        };
        let ack = ack.0.then_some((ack.1 & ((1 << 56) - 1), ack.2));
        roundtrip(&Msg::UpdateBatch {
            proc: ProcId(proc),
            first_seq: seqs.0,
            upto: seqs.0 + seqs.1,
            entries,
            delta,
            ack,
        });
    }

    #[test]
    fn sync_messages_roundtrip(
        proc in 0u32..8,
        obj in 0u32..64,
        n in 0u32..100_000,
        write_mode in any::<bool>(),
        knowledge in arb_vclock(),
    ) {
        let mode = if write_mode { LockMode::Write } else { LockMode::Read };
        roundtrip(&Msg::Flush { from_proc: ProcId(proc), upto: n });
        roundtrip(&Msg::FlushAck);
        roundtrip(&Msg::LockReq { proc: ProcId(proc), lock: LockId(obj), mode });
        roundtrip(&Msg::LockRel {
            proc: ProcId(proc),
            lock: LockId(obj),
            mode,
            knowledge: knowledge.clone(),
            own_count: n,
            dirty: vec![(Loc(obj), n), (Loc(obj + 1), n / 2)],
        });
        roundtrip(&Msg::BarrierArrive {
            proc: ProcId(proc),
            barrier: BarrierId(obj),
            round: n,
            knowledge: knowledge.clone(),
        });
        roundtrip(&Msg::BarrierRelease { barrier: BarrierId(obj), round: n, knowledge });
    }

    #[test]
    fn lock_grant_roundtrips(
        obj in 0u32..64,
        knowledge in arb_vclock(),
        preds in proptest::collection::vec((0u32..8, any::<u32>()), 0..4),
        demand in proptest::collection::vec((0u32..64, 0u32..8, any::<u32>()), 0..4),
    ) {
        let grant = GrantInfo {
            knowledge,
            preds: preds.into_iter().map(|(p, c)| (ProcId(p), c)).collect(),
            demand: demand.into_iter().map(|(l, p, s)| (Loc(l), ProcId(p), s)).collect(),
        };
        roundtrip(&Msg::LockGrant { lock: LockId(obj), grant });
    }

    #[test]
    fn sc_messages_roundtrip(
        proc in 0u32..8,
        loc in 0u32..64,
        value in arb_value(),
        writer in arb_writer(),
        with_writer in any::<bool>(),
    ) {
        roundtrip(&Msg::ScRead { proc: ProcId(proc), loc: Loc(loc) });
        roundtrip(&Msg::ScReadResp {
            value,
            writer: with_writer.then_some(writer),
        });
        roundtrip(&Msg::ScWrite {
            writer,
            loc: Loc(loc),
            payload: UpdatePayload::Set(value),
        });
        roundtrip(&Msg::ScWriteAck);
        roundtrip(&Msg::ScAwait { proc: ProcId(proc), loc: Loc(loc), value });
        roundtrip(&Msg::ScAwaitResp { value, writers: vec![writer, writer] });
    }

    #[test]
    fn session_messages_roundtrip(
        seq in 0u64..(1 << 56),
        epoch in any::<u64>(),
        proc in 0u32..8,
        upto in any::<u32>(),
    ) {
        roundtrip(&Msg::SessAck { upto: seq, epoch });
        // The wrapper nests an arbitrary payload; a batch exercises the
        // recursive self-delimiting decode hardest.
        let inner = Msg::Flush { from_proc: ProcId(proc), upto };
        roundtrip(&Msg::SessData { seq, epoch, inner: Box::new(inner) });
    }

    #[test]
    fn recovery_messages_roundtrip(
        proc in 0u32..8,
        incarnation in any::<u32>(),
        applied in arb_vclock(),
        entries_seed in 0u32..8,
        deps in (any::<bool>(), arb_vclock()),
    ) {
        roundtrip(&Msg::RecoverReq { proc: ProcId(proc), incarnation, applied });
        let entries = {
            let mut rng = proptest::test_rng(entries_seed);
            arb_entries(proc).generate(&mut rng)
        };
        roundtrip(&Msg::RecoverResp {
            proc: ProcId(proc),
            first_seq: incarnation / 2,
            upto: incarnation,
            entries: entries.to_vec(),
            deps: deps.0.then_some(deps.1),
            seen: incarnation / 3,
        });
    }

    #[test]
    fn shard_messages_roundtrip(
        proc in 0u32..8,
        shard in 0u32..16,
        writer in arb_writer(),
        payload in arb_payload(),
        deps in arb_triples(),
        entries_seed in 0u32..8,
        counts in (0u32..1000, 0u32..1000, 0u32..1000),
    ) {
        let (prev, upto, seen) = counts;
        roundtrip(&Msg::ShardUpdate { writer, loc: Loc(shard), payload, prev, deps: deps.clone() });
        let entries = {
            let mut rng = proptest::test_rng(entries_seed);
            arb_entries(proc).generate(&mut rng)
        };
        roundtrip(&Msg::ShardUpdateBatch {
            proc: ProcId(proc),
            shard,
            prev,
            upto,
            entries: entries.clone(),
            deps: deps.clone(),
        });
        roundtrip(&Msg::SubReq { proc: ProcId(proc), shard });
        roundtrip(&Msg::SubAck { shard, subs: vec![ProcId(proc), ProcId(proc + 1)] });
        roundtrip(&Msg::SubNotify { shard, proc: ProcId(proc) });
        roundtrip(&Msg::ShardRecoverReq {
            proc: ProcId(proc),
            incarnation: upto,
            applied: deps.clone(),
        });
        roundtrip(&Msg::ShardRecoverResp {
            proc: ProcId(proc),
            shard,
            prev,
            upto,
            entries: entries.to_vec(),
            deps,
            seen,
        });
    }
}

/// Every `Msg` variant must appear in exactly one roundtrip test above —
/// this canary breaks when a variant is added without codec coverage.
#[test]
fn all_variants_covered() {
    let covered = [
        "update",
        "update_batch",
        "flush",
        "flush_ack",
        "lock_req",
        "lock_grant",
        "lock_rel",
        "barrier_arrive",
        "barrier_release",
        "sc_read",
        "sc_read_resp",
        "sc_write",
        "sc_write_ack",
        "sc_await",
        "sc_await_resp",
        "sess_data",
        "session_ack",
        "recover_req",
        "recover_resp",
        "shard_update",
        "shard_update_batch",
        "sub_req",
        "sub_ack",
        "sub_notify",
        "shard_recover_req",
        "shard_recover_resp",
    ];
    assert_eq!(covered.len(), 26, "one entry per Msg variant");
}
