//! Property tests for the durability codec: whatever `kill -9`, a torn
//! page-cache flush, or a flipped bit leaves in `wal.log`, recovery must
//! either replay a *valid prefix* of what was logged or stop with a
//! clean diagnostic — never silently apply a record that was not
//! written.

use proptest::prelude::*;

use mc_model::{Loc, ProcId, VClock, Value, WriteId};
use mc_proto::{crc32, decode_wal, BatchEntry, Snapshot, UpdatePayload, WalRecord, WalTail};

fn gen_clock() -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0..20u32, 3usize).prop_map(|counts| {
        let mut vc = VClock::new(3);
        for (i, c) in counts.into_iter().enumerate() {
            vc.set(ProcId(i as u32), c);
        }
        vc
    })
}

fn gen_opt_clock() -> impl Strategy<Value = Option<VClock>> {
    (any::<bool>(), gen_clock()).prop_map(|(some, vc)| some.then_some(vc))
}

fn gen_payload() -> impl Strategy<Value = UpdatePayload> {
    prop_oneof![
        (-1000i64..1000).prop_map(|v| UpdatePayload::Set(Value::Int(v))),
        (-50i64..50).prop_map(|d| UpdatePayload::Add(Value::Int(d))),
    ]
}

fn gen_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0..8u32, gen_payload(), gen_opt_clock())
            .prop_map(|(loc, payload, deps)| WalRecord::OwnWrite { loc: Loc(loc), payload, deps }),
        (0..3u32, 1..100u32, 0..8u32, gen_payload(), gen_opt_clock()).prop_map(
            |(w, seq, loc, payload, deps)| WalRecord::Ingest {
                writer: WriteId::new(ProcId(w), seq),
                loc: Loc(loc),
                payload,
                deps,
            }
        ),
        (0..3u32, 1..50u32, 0..4u32, gen_payload(), gen_opt_clock()).prop_map(
            |(p, first, span, payload, deps)| WalRecord::IngestBatch {
                proc: ProcId(p),
                first_seq: first,
                upto: first + span,
                entries: vec![BatchEntry {
                    loc: Loc(0),
                    payload,
                    writer: WriteId::new(ProcId(p), first + span),
                    adds: Vec::new(),
                }],
                deps,
            }
        ),
        (0..16u32).prop_map(|incarnation| WalRecord::Incarnation { incarnation }),
    ]
}

/// Encodes each record separately so tests know the frame boundaries.
fn frames(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut starts = Vec::new();
    for rec in records {
        starts.push(log.len());
        log.extend_from_slice(&rec.encode());
    }
    (log, starts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A log written whole reads back whole: every generated record
    /// sequence round-trips with a clean tail.
    #[test]
    fn wal_round_trips_any_record_sequence(
        records in proptest::collection::vec(gen_record(), 0..12),
    ) {
        let (log, _) = frames(&records);
        let (decoded, tail) = decode_wal(&log);
        prop_assert_eq!(tail, WalTail::Clean);
        prop_assert_eq!(decoded, records);
    }

    /// Truncation at *any* byte — what an interrupted flush leaves —
    /// yields exactly the fully-flushed record prefix, with `Clean` on a
    /// frame boundary and `Torn` (pointing at the boundary) inside one.
    #[test]
    fn truncation_at_any_byte_yields_the_valid_prefix(
        records in proptest::collection::vec(gen_record(), 1..10),
        cut_sel in any::<u64>(),
    ) {
        let (log, starts) = frames(&records);
        let cut = (cut_sel % (log.len() as u64 + 1)) as usize;
        let (decoded, tail) = decode_wal(&log[..cut]);

        // A frame survives iff it ends at or before the cut.
        let mut survivors = 0;
        for (k, &s) in starts.iter().enumerate() {
            let end = starts.get(k + 1).copied().unwrap_or(log.len());
            if s < cut && end <= cut {
                survivors = k + 1;
            }
        }
        prop_assert_eq!(decoded.len(), survivors, "cut at {} of {}", cut, log.len());
        prop_assert_eq!(&decoded[..], &records[..survivors]);
        let boundary = starts.get(survivors).copied().unwrap_or(log.len());
        if cut == boundary {
            prop_assert_eq!(tail, WalTail::Clean);
        } else {
            prop_assert_eq!(tail, WalTail::Torn { at: boundary });
        }
    }

    /// A single flipped bit anywhere in frame `k` never forges a record:
    /// decoding returns records `0..k` unchanged and flags the damaged
    /// frame as `Torn` (length field mangled past the buffer) or
    /// `Corrupt` (CRC or body-parse failure) — at frame k's boundary.
    #[test]
    fn single_bit_flip_cannot_forge_records(
        records in proptest::collection::vec(gen_record(), 1..10),
        frame_sel in any::<u64>(),
        bit_sel in any::<u64>(),
    ) {
        let (mut log, starts) = frames(&records);
        let k = (frame_sel % records.len() as u64) as usize;
        let start = starts[k];
        let end = starts.get(k + 1).copied().unwrap_or(log.len());
        let bit = (bit_sel % ((end - start) as u64 * 8)) as usize;
        log[start + bit / 8] ^= 1 << (bit % 8);

        let (decoded, tail) = decode_wal(&log);
        prop_assert_eq!(&decoded[..], &records[..k], "flip in frame {} forged a record", k);
        prop_assert!(
            tail == WalTail::Torn { at: start } || tail == WalTail::Corrupt { at: start },
            "flip in frame {} went undiagnosed: {:?}", k, tail
        );
    }

    /// A corrupted frame *length* field — including values near
    /// `u32::MAX` that a random bit-flip almost never produces — must
    /// yield `Torn` at that frame with the prefix intact, and must not
    /// attempt an allocation or slice anywhere near the poisoned size.
    #[test]
    fn huge_frame_length_fields_yield_torn_not_oom(
        records in proptest::collection::vec(gen_record(), 1..8),
        frame_sel in any::<u64>(),
        poison in (0u32..4).prop_map(|i| {
            [u32::MAX, u32::MAX - 7, i32::MAX as u32, 1u32 << 30][i as usize]
        }),
    ) {
        let (mut log, starts) = frames(&records);
        let k = (frame_sel % records.len() as u64) as usize;
        let s = starts[k];
        log[s..s + 4].copy_from_slice(&poison.to_le_bytes());
        let (decoded, tail) = decode_wal(&log);
        prop_assert_eq!(&decoded[..], &records[..k]);
        prop_assert_eq!(tail, WalTail::Torn { at: s });
    }

    /// A poisoned 32-bit word *inside* a frame body — element counts
    /// included — with the CRC refreshed so the body parser (not the
    /// checksum) confronts the damage: frames before the mutation decode
    /// unchanged, and the mutated frame either still parses (the word
    /// was a benign field, and later frames are untouched) or is flagged
    /// `Corrupt`/`Torn` exactly at its boundary. Either way, no panic
    /// and no huge reservation.
    #[test]
    fn poisoned_interior_counts_never_allocate_or_panic(
        records in proptest::collection::vec(gen_record(), 1..8),
        frame_sel in any::<u64>(),
        word_sel in any::<u64>(),
        poison in (0u32..4).prop_map(|i| {
            [u32::MAX, u32::MAX - 1, i32::MAX as u32, 0xDEAD_BEEFu32][i as usize]
        }),
    ) {
        let (mut log, starts) = frames(&records);
        let k = (frame_sel % records.len() as u64) as usize;
        let s = starts[k];
        let end = starts.get(k + 1).copied().unwrap_or(log.len());
        let body = s + 8..end;
        // Every record body is at least 5 bytes (tag + one u32 field).
        let off = body.start + (word_sel % (body.len() as u64 - 3)) as usize;
        log[off..off + 4].copy_from_slice(&poison.to_le_bytes());
        let crc = crc32(&log[body.clone()]);
        log[s + 4..s + 8].copy_from_slice(&crc.to_le_bytes());

        let (decoded, tail) = decode_wal(&log);
        prop_assert!(decoded.len() >= k, "mutation in frame {} damaged the prefix", k);
        prop_assert_eq!(&decoded[..k], &records[..k]);
        if tail == WalTail::Clean {
            prop_assert_eq!(decoded.len(), records.len());
            prop_assert_eq!(&decoded[k + 1..], &records[k + 1..]);
        } else {
            prop_assert_eq!(decoded.len(), k);
            prop_assert!(
                tail == WalTail::Torn { at: s } || tail == WalTail::Corrupt { at: s },
                "damage in frame {} misattributed: {:?}", k, tail
            );
        }
    }

    /// The same poisoning for snapshots: a huge header length is
    /// `Truncated`, and a poisoned interior count (CRC refreshed) is
    /// rejected as `Malformed` or decodes benignly — never a panic or an
    /// attempted allocation near the poisoned size.
    #[test]
    fn snapshot_length_field_poison_is_rejected_cleanly(
        store in proptest::collection::vec((0..8u32, -100i64..100), 1..6),
        word_sel in any::<u64>(),
        header in any::<bool>(),
        poison in (0u32..3).prop_map(|i| {
            [u32::MAX, i32::MAX as u32, 0xFFFF_0000u32][i as usize]
        }),
    ) {
        let snap = Snapshot {
            incarnation: 1,
            applied: VClock::new(3),
            store: store.into_iter().map(|(l, v)| (Loc(l), Value::Int(v), None)).collect(),
            counter_updates: vec![(Loc(0), vec![WriteId::new(ProcId(0), 1)])],
            write_log: vec![(Loc(0), 1)],
            ..Snapshot::default()
        };
        let mut bytes = snap.encode();
        if header {
            // magic(8) | len(4) | crc(4) | body
            bytes[8..12].copy_from_slice(&poison.to_le_bytes());
            prop_assert!(Snapshot::decode(&bytes).is_err(), "huge header length accepted");
        } else {
            let body = 16..bytes.len();
            let off = body.start + (word_sel % (body.len() as u64 - 3)) as usize;
            bytes[off..off + 4].copy_from_slice(&poison.to_le_bytes());
            let crc = crc32(&bytes[body.clone()]);
            bytes[12..16].copy_from_slice(&crc.to_le_bytes());
            // Either cleanly rejected or a benign field changed — the
            // property is completing without panic or huge reservation.
            let _ = Snapshot::decode(&bytes);
        }
    }

    /// Snapshots are all-or-nothing: any single bit flip or truncation
    /// is rejected with a diagnostic, never decoded into different
    /// replica state. (The atomic tmp+rename install makes partial
    /// snapshot writes invisible; this covers media corruption.)
    #[test]
    fn snapshot_corruption_is_always_detected(
        incarnation in 0..8u32,
        store in proptest::collection::vec((0..8u32, -100i64..100), 0..6),
        pos_sel in any::<u64>(),
        truncate in any::<bool>(),
    ) {
        let snap = Snapshot {
            incarnation,
            applied: VClock::new(3),
            store: store
                .into_iter()
                .map(|(l, v)| (Loc(l), Value::Int(v), None))
                .collect(),
            ..Snapshot::default()
        };
        let mut bytes = snap.encode();
        prop_assert_eq!(Snapshot::decode(&bytes).expect("clean round-trip"), snap);

        if truncate {
            let keep = (pos_sel % bytes.len() as u64) as usize;
            prop_assert!(Snapshot::decode(&bytes[..keep]).is_err(), "truncated snapshot accepted");
        } else {
            let bit = (pos_sel % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(Snapshot::decode(&bytes).is_err(), "flipped snapshot accepted");
        }
    }
}

/// The documented recovery contract, end to end on a byte level: replay
/// the valid prefix, truncate the torn tail, refuse the corrupt frame.
#[test]
fn tail_diagnostics_carry_usable_truncation_offsets() {
    let a = WalRecord::Incarnation { incarnation: 1 }.encode();
    let b =
        WalRecord::OwnWrite { loc: Loc(0), payload: UpdatePayload::Set(Value::Int(7)), deps: None }
            .encode();

    // Torn: recovery truncates at `at` and the log is clean again.
    let mut torn = [a.clone(), b.clone()].concat();
    torn.truncate(a.len() + 3);
    let (recs, tail) = decode_wal(&torn);
    assert_eq!(recs.len(), 1);
    assert_eq!(tail, WalTail::Torn { at: a.len() });
    torn.truncate(a.len());
    assert_eq!(decode_wal(&torn).1, WalTail::Clean);

    // Corrupt: the offset names the poisoned frame for the diagnostic.
    let mut corrupt = [a.clone(), b].concat();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xff;
    let (recs, tail) = decode_wal(&corrupt);
    assert_eq!(recs.len(), 1);
    assert_eq!(tail, WalTail::Corrupt { at: a.len() });
}
