//! Execution metrics: message counts, bytes, events, stalls.
//!
//! The qualitative claims of the paper (Section 7) are about communication
//! and stall costs, so the simulator accounts for them exactly: every
//! message carries a static *kind* label and a size, and every blocked
//! process resume records how long the process stalled.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Per-message-kind counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages sent.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// Per-process counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Syscalls issued by the process.
    pub syscalls: u64,
    /// Syscalls that blocked at least once.
    pub blocked: u64,
    /// Total virtual time spent blocked.
    pub stall_time: SimTime,
}

/// Counters of injected network faults (see
/// [`FaultPlan`](crate::FaultPlan)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages suppressed by the random drop probability.
    pub dropped: u64,
    /// Extra deliveries injected by the duplication probability.
    pub duplicated: u64,
    /// Messages suppressed because a partition severed the link.
    pub partition_dropped: u64,
    /// Messages suppressed by a node crash (sent or wiped while down).
    pub crash_dropped: u64,
}

impl FaultStats {
    /// Total number of faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.partition_dropped + self.crash_dropped
    }

    /// Total number of message copies suppressed (each suppressed copy is
    /// counted in exactly one of the three drop buckets; duplicates are
    /// extra copies, not suppressions, so they are excluded here).
    pub fn dropped_total(&self) -> u64 {
        self.dropped + self.partition_dropped + self.crash_dropped
    }
}

/// Counters of the durability subsystem: write-ahead-log records and
/// compacted snapshots (see `mc_proto::durability`).
///
/// Appends obey their own conservation law, checked at the end of every
/// run: every record staged by an append is either made durable by an
/// fsync, lost to a crash before its fsync, or still staged when the run
/// ends. All four terms are zero when durability is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (staged) to a replica's log.
    pub appends: u64,
    /// Staged records made durable by an fsync.
    pub synced: u64,
    /// Fsync calls that made at least one record durable. Per-write
    /// durability pays one per record; group commit amortizes one call
    /// over every record staged since the last externalization, so
    /// `fsyncs < synced` is the signature of effective batching.
    pub fsyncs: u64,
    /// Staged records lost to a crash before their fsync.
    pub lost: u64,
    /// Durable records replayed during recoveries.
    pub replayed: u64,
    /// Compacted snapshots installed.
    pub snapshots: u64,
    /// Crash-recoveries completed.
    pub recoveries: u64,
}

/// Number of log₂ buckets in a [`Histogram`] (covers the full `u64`
/// nanosecond range).
const HIST_BUCKETS: usize = 65;

/// A deterministic log₂-bucketed histogram of [`SimTime`] durations.
///
/// Bucket `i` holds durations `d` with `⌊log₂ d⌋ = i - 1` (bucket 0 holds
/// exactly zero), so the bucket layout is fixed and seed-independent:
/// identical runs produce byte-identical histograms. Quantiles are
/// resolved to the upper bound of the containing bucket, clamped to the
/// recorded maximum — exact enough for the order-of-magnitude stall/RTO
/// distributions the paper's cost claims are about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(nanos: u64) -> usize {
        (u64::BITS - nanos.leading_zeros()) as usize
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimTime) {
        let n = d.as_nanos();
        self.buckets[Self::bucket_of(n)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(n);
        self.min = self.min.min(n);
        self.max = self.max.max(n);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> SimTime {
        SimTime::from_nanos(self.sum)
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> SimTime {
        SimTime::from_nanos(if self.count == 0 { 0 } else { self.min })
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max)
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(self.sum / self.count)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the upper bound of
    /// the containing log₂ bucket and clamped to the recorded maximum.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 is exactly 0).
                let hi = if i == 0 { 0 } else { (1u64 << i.min(63)).saturating_sub(1) };
                return SimTime::from_nanos(hi.min(self.max).max(self.min));
            }
        }
        self.max()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_kind: BTreeMap<&'static str, KindStats>,
    per_proc: Vec<ProcStats>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Number of simulator events processed (deliveries + syscalls +
    /// timer expirations).
    pub events: u64,
    /// Number of syscalls that blocked at least once.
    pub blocked_syscalls: u64,
    /// Total virtual time processes spent blocked.
    pub stall_time: SimTime,
    /// Virtual time at the end of the run.
    pub finish_time: SimTime,
    /// Injected network faults.
    pub faults: FaultStats,
    /// Message copies delivered to a protocol (duplicate copies count).
    pub delivered: u64,
    /// Protocol timers armed.
    pub timers_set: u64,
    /// Protocol timers that expired.
    pub timers_fired: u64,
    /// Protocol timers wiped by a crash before they could fire.
    pub timers_cancelled: u64,
    /// Protocol timers still armed when the run ended.
    pub timers_pending: u64,
    /// Durability counters (WAL records, snapshots, recoveries).
    pub wal: DurabilityStats,
    /// WAL records still staged (appended, never fsynced) when the run
    /// ended, reported by [`Protocol::durable_staged`](crate::Protocol::durable_staged).
    pub wal_staged: u64,
    /// Distribution of per-stall blocked durations.
    pub stall_hist: Histogram,
    /// Distribution of message delivery latencies (send to delivery).
    pub delivery_hist: Histogram,
    /// Distribution of retransmission timeouts actually waited by the
    /// session layer (recorded at each retransmission).
    pub rto_hist: Histogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message.
    pub fn record_send(&mut self, kind: &'static str, bytes: u64) {
        let e = self.per_kind.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes;
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Records a resumed process that stalled for `stall`.
    pub fn record_stall(&mut self, stall: SimTime) {
        self.blocked_syscalls += 1;
        self.stall_time += stall;
        self.stall_hist.record(stall);
    }

    /// Records one message copy handed to the protocol after spending
    /// `latency` in flight.
    pub fn record_delivery(&mut self, latency: SimTime) {
        self.delivered += 1;
        self.delivery_hist.record(latency);
    }

    /// Records the backoff interval a session-layer retransmission waited.
    pub fn record_rto(&mut self, rto: SimTime) {
        self.rto_hist.record(rto);
    }

    /// Checks the message and timer conservation laws:
    ///
    /// * every copy put in flight (`messages` sends plus `duplicated`
    ///   extra copies) is either delivered, suppressed by exactly one
    ///   fault bucket, or still queued;
    /// * every timer armed either fired, was cancelled by a crash, or is
    ///   still pending.
    ///
    /// `queued` is the number of deliveries still in flight when the run
    /// ended (zero on normal completion — in-flight deliveries are always
    /// runnable events).
    pub fn check_conservation(&self, queued: u64) -> Result<(), String> {
        let copies = self.messages + self.faults.duplicated;
        let accounted = self.delivered + self.faults.dropped_total() + queued;
        if copies != accounted {
            return Err(format!(
                "message conservation violated: {} sent + {} duplicated != \
                 {} delivered + {} dropped + {} partition_dropped + \
                 {} crash_dropped + {queued} queued",
                self.messages,
                self.faults.duplicated,
                self.delivered,
                self.faults.dropped,
                self.faults.partition_dropped,
                self.faults.crash_dropped,
            ));
        }
        let timer_accounted = self.timers_fired + self.timers_cancelled + self.timers_pending;
        if self.timers_set != timer_accounted {
            return Err(format!(
                "timer conservation violated: {} set != {} fired + \
                 {} cancelled + {} pending",
                self.timers_set, self.timers_fired, self.timers_cancelled, self.timers_pending,
            ));
        }
        let wal_accounted = self.wal.synced + self.wal.lost + self.wal_staged;
        if self.wal.appends != wal_accounted {
            return Err(format!(
                "WAL conservation violated: {} appended != {} synced + \
                 {} lost + {} staged",
                self.wal.appends, self.wal.synced, self.wal.lost, self.wal_staged,
            ));
        }
        Ok(())
    }

    fn proc_entry(&mut self, proc: usize) -> &mut ProcStats {
        if proc >= self.per_proc.len() {
            self.per_proc.resize(proc + 1, ProcStats::default());
        }
        &mut self.per_proc[proc]
    }

    /// Records one syscall issued by `proc`.
    pub fn record_proc_syscall(&mut self, proc: usize) {
        self.proc_entry(proc).syscalls += 1;
    }

    /// Records a stall of `proc`.
    pub fn record_proc_stall(&mut self, proc: usize, stall: SimTime) {
        let e = self.proc_entry(proc);
        e.blocked += 1;
        e.stall_time += stall;
    }

    /// Per-process counters (indexed by process token).
    pub fn proc(&self, proc: usize) -> ProcStats {
        self.per_proc.get(proc).copied().unwrap_or_default()
    }

    /// Iterates over all per-process counters.
    pub fn procs(&self) -> impl Iterator<Item = (usize, ProcStats)> + '_ {
        self.per_proc.iter().enumerate().map(|(i, &s)| (i, s))
    }

    /// The counters for one message kind (zero if never sent).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterates over `(kind, stats)` in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.per_kind.iter().map(|(&k, &v)| (k, v))
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "time={} events={} messages={} delivered={} bytes={} blocked={} stall={}",
            self.finish_time,
            self.events,
            self.messages,
            self.delivered,
            self.bytes,
            self.blocked_syscalls,
            self.stall_time
        )?;
        if self.faults.total() > 0 {
            writeln!(
                f,
                "  faults: dropped={} duplicated={} partitioned={} crashed={}",
                self.faults.dropped,
                self.faults.duplicated,
                self.faults.partition_dropped,
                self.faults.crash_dropped
            )?;
        }
        if self.timers_set > 0 {
            writeln!(
                f,
                "  timers: set={} fired={} cancelled={} pending={}",
                self.timers_set, self.timers_fired, self.timers_cancelled, self.timers_pending
            )?;
        }
        if self.wal.appends > 0 || self.wal.recoveries > 0 {
            writeln!(
                f,
                "  wal: appended={} synced={} fsyncs={} lost={} replayed={} snapshots={} \
                 recoveries={}",
                self.wal.appends,
                self.wal.synced,
                self.wal.fsyncs,
                self.wal.lost,
                self.wal.replayed,
                self.wal.snapshots,
                self.wal.recoveries
            )?;
        }
        if !self.stall_hist.is_empty() {
            writeln!(f, "  stall: {}", self.stall_hist)?;
        }
        if !self.delivery_hist.is_empty() {
            writeln!(f, "  delivery latency: {}", self.delivery_hist)?;
        }
        if !self.rto_hist.is_empty() {
            writeln!(f, "  rto: {}", self.rto_hist)?;
        }
        for (kind, s) in &self.per_kind {
            writeln!(f, "  {kind}: {} msgs, {} bytes", s.count, s.bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting() {
        let mut m = Metrics::new();
        m.record_send("update", 16);
        m.record_send("update", 16);
        m.record_send("grant", 4);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 36);
        assert_eq!(m.kind("update"), KindStats { count: 2, bytes: 32 });
        assert_eq!(m.kind("grant").count, 1);
        assert_eq!(m.kind("nonexistent"), KindStats::default());
        let kinds: Vec<_> = m.kinds().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["grant", "update"]);
    }

    #[test]
    fn stall_accounting() {
        let mut m = Metrics::new();
        m.record_stall(SimTime::from_micros(5));
        m.record_stall(SimTime::from_micros(3));
        assert_eq!(m.blocked_syscalls, 2);
        assert_eq!(m.stall_time, SimTime::from_micros(8));
    }

    #[test]
    fn per_proc_accounting() {
        let mut m = Metrics::new();
        m.record_proc_syscall(1);
        m.record_proc_syscall(1);
        m.record_proc_stall(1, SimTime::from_micros(2));
        assert_eq!(m.proc(1).syscalls, 2);
        assert_eq!(m.proc(1).blocked, 1);
        assert_eq!(m.proc(1).stall_time, SimTime::from_micros(2));
        assert_eq!(m.proc(0), ProcStats::default());
        assert_eq!(m.proc(9), ProcStats::default(), "unknown proc is zeroed");
        assert_eq!(m.procs().count(), 2);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = Metrics::new();
        m.record_send("update", 8);
        m.finish_time = SimTime::from_micros(1);
        let s = m.to_string();
        assert!(s.contains("messages=1"));
        assert!(s.contains("update: 1 msgs"));
    }

    #[test]
    fn histogram_buckets_are_deterministic() {
        let mut h = Histogram::new();
        for ns in [0u64, 1, 2, 3, 1_000, 1_000_000, u64::MAX] {
            h.record(SimTime::from_nanos(ns));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::from_nanos(u64::MAX));
        let h2 = {
            let mut h2 = Histogram::new();
            for ns in [0u64, 1, 2, 3, 1_000, 1_000_000, u64::MAX] {
                h2.record(SimTime::from_nanos(ns));
            }
            h2
        };
        assert_eq!(h, h2, "identical inputs give identical histograms");
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimTime::from_micros(us));
        }
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
        // p50 of 1..=100µs lies in the 64µs..128µs bucket, clamped to max.
        let p50 = h.quantile(0.5).as_nanos();
        assert!((50_000..=131_072).contains(&p50), "p50 = {p50}ns");
        assert_eq!(h.mean(), SimTime::from_nanos(50_500));
        assert_eq!(Histogram::new().quantile(0.5), SimTime::ZERO);
    }

    #[test]
    fn delivery_and_rto_recording() {
        let mut m = Metrics::new();
        m.record_delivery(SimTime::from_micros(7));
        m.record_delivery(SimTime::from_micros(9));
        m.record_rto(SimTime::from_micros(50));
        assert_eq!(m.delivered, 2);
        assert_eq!(m.delivery_hist.count(), 2);
        assert_eq!(m.rto_hist.count(), 1);
        assert_eq!(m.rto_hist.sum(), SimTime::from_micros(50));
    }

    #[test]
    fn conservation_checks() {
        let mut m = Metrics::new();
        m.record_send("update", 8);
        m.record_send("update", 8);
        m.faults.duplicated = 1;
        m.record_delivery(SimTime::ZERO);
        m.record_delivery(SimTime::ZERO);
        m.faults.dropped = 1;
        assert!(m.check_conservation(0).is_ok());
        m.faults.dropped = 0;
        let err = m.check_conservation(0).unwrap_err();
        assert!(err.contains("message conservation"), "{err}");
        m.faults.dropped = 1;
        m.timers_set = 3;
        m.timers_fired = 1;
        let err = m.check_conservation(0).unwrap_err();
        assert!(err.contains("timer conservation"), "{err}");
        m.timers_cancelled = 1;
        m.timers_pending = 1;
        assert!(m.check_conservation(0).is_ok());
    }

    #[test]
    fn wal_conservation_law() {
        let mut m = Metrics::new();
        assert!(m.check_conservation(0).is_ok(), "all-zero WAL terms balance");
        m.wal.appends = 5;
        m.wal.synced = 3;
        let err = m.check_conservation(0).unwrap_err();
        assert!(err.contains("WAL conservation"), "{err}");
        m.wal.lost = 1;
        m.wal_staged = 1;
        assert!(m.check_conservation(0).is_ok());
        let s = m.to_string();
        assert!(s.contains("wal: appended=5"), "{s}");
    }
}
