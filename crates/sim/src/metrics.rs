//! Execution metrics: message counts, bytes, events, stalls.
//!
//! The qualitative claims of the paper (Section 7) are about communication
//! and stall costs, so the simulator accounts for them exactly: every
//! message carries a static *kind* label and a size, and every blocked
//! process resume records how long the process stalled.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Per-message-kind counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages sent.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// Per-process counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Syscalls issued by the process.
    pub syscalls: u64,
    /// Syscalls that blocked at least once.
    pub blocked: u64,
    /// Total virtual time spent blocked.
    pub stall_time: SimTime,
}

/// Counters of injected network faults (see
/// [`FaultPlan`](crate::FaultPlan)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages suppressed by the random drop probability.
    pub dropped: u64,
    /// Extra deliveries injected by the duplication probability.
    pub duplicated: u64,
    /// Messages suppressed because a partition severed the link.
    pub partition_dropped: u64,
    /// Messages suppressed by a node crash (sent or wiped while down).
    pub crash_dropped: u64,
}

impl FaultStats {
    /// Total number of faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.partition_dropped + self.crash_dropped
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_kind: BTreeMap<&'static str, KindStats>,
    per_proc: Vec<ProcStats>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Number of simulator events processed (deliveries + syscalls +
    /// timer expirations).
    pub events: u64,
    /// Number of syscalls that blocked at least once.
    pub blocked_syscalls: u64,
    /// Total virtual time processes spent blocked.
    pub stall_time: SimTime,
    /// Virtual time at the end of the run.
    pub finish_time: SimTime,
    /// Injected network faults.
    pub faults: FaultStats,
    /// Protocol timers armed.
    pub timers_set: u64,
    /// Protocol timers that expired.
    pub timers_fired: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message.
    pub fn record_send(&mut self, kind: &'static str, bytes: u64) {
        let e = self.per_kind.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes;
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Records a resumed process that stalled for `stall`.
    pub fn record_stall(&mut self, stall: SimTime) {
        self.blocked_syscalls += 1;
        self.stall_time += stall;
    }

    fn proc_entry(&mut self, proc: usize) -> &mut ProcStats {
        if proc >= self.per_proc.len() {
            self.per_proc.resize(proc + 1, ProcStats::default());
        }
        &mut self.per_proc[proc]
    }

    /// Records one syscall issued by `proc`.
    pub fn record_proc_syscall(&mut self, proc: usize) {
        self.proc_entry(proc).syscalls += 1;
    }

    /// Records a stall of `proc`.
    pub fn record_proc_stall(&mut self, proc: usize, stall: SimTime) {
        let e = self.proc_entry(proc);
        e.blocked += 1;
        e.stall_time += stall;
    }

    /// Per-process counters (indexed by process token).
    pub fn proc(&self, proc: usize) -> ProcStats {
        self.per_proc.get(proc).copied().unwrap_or_default()
    }

    /// Iterates over all per-process counters.
    pub fn procs(&self) -> impl Iterator<Item = (usize, ProcStats)> + '_ {
        self.per_proc.iter().enumerate().map(|(i, &s)| (i, s))
    }

    /// The counters for one message kind (zero if never sent).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterates over `(kind, stats)` in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.per_kind.iter().map(|(&k, &v)| (k, v))
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "time={} events={} messages={} bytes={} blocked={} stall={}",
            self.finish_time,
            self.events,
            self.messages,
            self.bytes,
            self.blocked_syscalls,
            self.stall_time
        )?;
        if self.faults.total() > 0 {
            writeln!(
                f,
                "  faults: dropped={} duplicated={} partitioned={} crashed={}",
                self.faults.dropped,
                self.faults.duplicated,
                self.faults.partition_dropped,
                self.faults.crash_dropped
            )?;
        }
        if self.timers_set > 0 {
            writeln!(f, "  timers: set={} fired={}", self.timers_set, self.timers_fired)?;
        }
        for (kind, s) in &self.per_kind {
            writeln!(f, "  {kind}: {} msgs, {} bytes", s.count, s.bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting() {
        let mut m = Metrics::new();
        m.record_send("update", 16);
        m.record_send("update", 16);
        m.record_send("grant", 4);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 36);
        assert_eq!(m.kind("update"), KindStats { count: 2, bytes: 32 });
        assert_eq!(m.kind("grant").count, 1);
        assert_eq!(m.kind("nonexistent"), KindStats::default());
        let kinds: Vec<_> = m.kinds().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["grant", "update"]);
    }

    #[test]
    fn stall_accounting() {
        let mut m = Metrics::new();
        m.record_stall(SimTime::from_micros(5));
        m.record_stall(SimTime::from_micros(3));
        assert_eq!(m.blocked_syscalls, 2);
        assert_eq!(m.stall_time, SimTime::from_micros(8));
    }

    #[test]
    fn per_proc_accounting() {
        let mut m = Metrics::new();
        m.record_proc_syscall(1);
        m.record_proc_syscall(1);
        m.record_proc_stall(1, SimTime::from_micros(2));
        assert_eq!(m.proc(1).syscalls, 2);
        assert_eq!(m.proc(1).blocked, 1);
        assert_eq!(m.proc(1).stall_time, SimTime::from_micros(2));
        assert_eq!(m.proc(0), ProcStats::default());
        assert_eq!(m.proc(9), ProcStats::default(), "unknown proc is zeroed");
        assert_eq!(m.procs().count(), 2);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = Metrics::new();
        m.record_send("update", 8);
        m.finish_time = SimTime::from_micros(1);
        let s = m.to_string();
        assert!(s.contains("messages=1"));
        assert!(s.contains("update: 1 msgs"));
    }
}
