//! Pluggable scheduling decisions: seeded randomness by default,
//! replayable decision traces for exhaustive exploration.
//!
//! Whenever several actions are runnable at the same virtual time the
//! kernel asks its [`Schedule`] which to take. With zero latency jitter,
//! the entire nondeterminism of a run is this decision sequence — so
//! enumerating decision traces enumerates schedules, which is what
//! exhaustive exploration (`mixed_consistency::explore`) does.

use std::fmt;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of scheduling decisions.
pub trait Schedule: Send {
    /// Picks one of `n ≥ 1` runnable candidates (returns an index `< n`).
    fn choose(&mut self, n: usize) -> usize;
}

/// The default schedule: uniform seeded choices.
#[derive(Debug)]
pub struct RandomSchedule(StdRng);

impl RandomSchedule {
    /// Creates a random schedule from a seed.
    pub fn new(seed: u64) -> Self {
        RandomSchedule(StdRng::seed_from_u64(seed))
    }
}

impl Schedule for RandomSchedule {
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

/// The recorded decisions of one run: the chosen index and the number of
/// candidates (arity) at every decision point.
#[derive(Clone, Debug, Default)]
pub struct DecisionTrace {
    /// Chosen candidate per decision point.
    pub choices: Vec<u32>,
    /// Number of candidates per decision point.
    pub arities: Vec<u32>,
}

impl DecisionTrace {
    /// The deepest decision point with an unexplored sibling, if any.
    pub fn last_branch_point(&self) -> Option<usize> {
        (0..self.choices.len()).rev().find(|&i| self.choices[i] + 1 < self.arities[i])
    }
}

/// A schedule that replays a decision prefix, then picks the first
/// candidate, recording everything — the building block of depth-first
/// schedule enumeration.
pub struct ReplaySchedule {
    prefix: Vec<u32>,
    pos: usize,
    trace: Arc<Mutex<DecisionTrace>>,
}

impl fmt::Debug for ReplaySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplaySchedule")
            .field("prefix_len", &self.prefix.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl ReplaySchedule {
    /// Creates a replay schedule; the recorded trace is readable through
    /// the returned handle after the run.
    pub fn new(prefix: Vec<u32>) -> (Self, Arc<Mutex<DecisionTrace>>) {
        let trace = Arc::new(Mutex::new(DecisionTrace::default()));
        (ReplaySchedule { prefix, pos: 0, trace: trace.clone() }, trace)
    }
}

impl Schedule for ReplaySchedule {
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        let choice = if self.pos < self.prefix.len() {
            // Replaying: the program is deterministic, so the arity at a
            // replayed position matches the recorded run — clamp anyway
            // for robustness.
            (self.prefix[self.pos] as usize).min(n - 1)
        } else {
            0
        };
        self.pos += 1;
        let mut t = self.trace.lock().expect("trace lock");
        t.choices.push(choice as u32);
        t.arities.push(n as u32);
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_in_range_and_deterministic() {
        let mut a = RandomSchedule::new(9);
        let mut b = RandomSchedule::new(9);
        for n in [1usize, 2, 3, 7] {
            let ca = a.choose(n);
            assert_eq!(ca, b.choose(n));
            assert!(ca < n);
        }
    }

    #[test]
    fn replay_follows_prefix_then_zero() {
        let (mut s, trace) = ReplaySchedule::new(vec![1, 2]);
        assert_eq!(s.choose(3), 1);
        assert_eq!(s.choose(4), 2);
        assert_eq!(s.choose(5), 0, "past the prefix: first candidate");
        let t = trace.lock().unwrap();
        assert_eq!(t.choices, vec![1, 2, 0]);
        assert_eq!(t.arities, vec![3, 4, 5]);
    }

    #[test]
    fn replay_clamps_out_of_range_prefix() {
        let (mut s, _) = ReplaySchedule::new(vec![9]);
        assert_eq!(s.choose(2), 1);
    }

    #[test]
    fn branch_point_detection() {
        let t = DecisionTrace { choices: vec![0, 1, 0], arities: vec![2, 2, 1] };
        // Position 2 has arity 1 (no sibling); position 1 chose 1 of 2 (no
        // sibling left); position 0 chose 0 of 2 — has a sibling.
        assert_eq!(t.last_branch_point(), Some(0));
        let done = DecisionTrace { choices: vec![1, 1], arities: vec![2, 2] };
        assert_eq!(done.last_branch_point(), None);
        assert_eq!(DecisionTrace::default().last_branch_point(), None);
    }
}
