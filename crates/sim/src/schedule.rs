//! Pluggable scheduling decisions: seeded randomness by default,
//! replayable decision traces for exhaustive exploration.
//!
//! Whenever several actions are runnable at the same virtual time the
//! kernel asks its [`Schedule`] which to take. With zero latency jitter,
//! the entire nondeterminism of a run is this decision sequence — so
//! enumerating decision traces enumerates schedules, which is what
//! exhaustive exploration (`mixed_consistency::explore`) does.
//!
//! Beyond the bare chosen index, the kernel also reports *what* the
//! candidates were ([`ActionId`]) and *which nodes* each executed step
//! touched ([`Schedule::record_footprint`]). A recording schedule keeps
//! this per-decision metadata in [`DecisionTrace::steps`], which is what
//! dynamic partial-order reduction needs to compute the dependency
//! relation between steps. Fault exploration adds a second kind of
//! decision point ([`Schedule::choose_fault`]): whether an individual
//! message send is delivered, dropped, or duplicated.

use std::fmt;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::NodeId;

/// The identity of one schedulable kernel action.
///
/// Identities are stable under deterministic replay: the same decision
/// prefix always reproduces the same candidate sets, because delivery and
/// timer sequence numbers are assigned deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ActionId {
    /// Resume process `proc`'s pending syscall.
    Syscall {
        /// The process token index.
        proc: u32,
    },
    /// Deliver the earliest queued message.
    Deliver {
        /// Sender node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The delivery's global sequence number.
        seq: u64,
    },
    /// Fire the earliest pending protocol timer.
    Timer {
        /// The node the timer belongs to.
        node: NodeId,
        /// The timer's global sequence number.
        seq: u64,
    },
    /// Crash `node` permanently (offered only under fault exploration,
    /// see [`crate::FaultBudget::crash_of`]).
    Crash {
        /// The crashing node.
        node: NodeId,
    },
    /// Crash `node` and immediately recover it from durable storage
    /// (offered under fault exploration, see
    /// [`crate::FaultBudget::crash_recover_of`], and scheduled by
    /// [`crate::FaultPlan::crash_recover`]). Volatile state and in-flight
    /// deliveries are lost; whatever the protocol persisted survives.
    CrashRecover {
        /// The node that crashes and recovers.
        node: NodeId,
    },
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionId::Syscall { proc } => write!(f, "syscall(P{proc})"),
            ActionId::Deliver { from, to, seq } => write!(f, "deliver({from}->{to}#{seq})"),
            ActionId::Timer { node, seq } => write!(f, "timer({node}#{seq})"),
            ActionId::Crash { node } => write!(f, "crash({node})"),
            ActionId::CrashRecover { node } => write!(f, "recover({node})"),
        }
    }
}

/// One element of a step's conflict footprint: which *part* of a node
/// the step accessed.
///
/// The split matters for the precision of partial-order reduction. A
/// message send only **enqueues** at the destination — it reads and
/// writes nothing of the destination's replica state — so a send and a
/// remote node's local read commute. Delivering, by contrast, dequeues
/// *and* mutates the replica. Keeping queue access apart from state
/// access lets the dependency relation see that distinction: two steps
/// are dependent iff their footprints share an element, and
/// `Queue(n)` ≠ `State(n)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Touch {
    /// The step read or wrote node-local replica state (memory copies,
    /// protocol tables, a blocked process's resumption condition).
    State(NodeId),
    /// The step enqueued into or dequeued from the node's delivery or
    /// timer queue.
    Queue(NodeId),
}

impl Touch {
    /// The node this touch concerns, ignoring which part.
    pub fn node(self) -> NodeId {
        match self {
            Touch::State(n) | Touch::Queue(n) => n,
        }
    }
}

impl fmt::Display for Touch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Touch::State(n) => write!(f, "state({n})"),
            Touch::Queue(n) => write!(f, "queue({n})"),
        }
    }
}

/// What a recorded decision point was about.
#[derive(Clone, Debug)]
pub enum StepKind {
    /// A scheduling decision among same-time candidates.
    Sched {
        /// The candidate actions, in the kernel's canonical order.
        candidates: Vec<ActionId>,
    },
    /// A fault decision for one message send (option 0 always means
    /// "deliver normally"; further options are drop and duplicate, in
    /// that order, subject to the remaining [`crate::FaultBudget`]).
    Fault {
        /// Sender node of the message being decided.
        from: NodeId,
        /// Destination node of the message being decided.
        to: NodeId,
    },
}

/// Metadata recorded for one decision point of a run.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// What the decision was about.
    pub kind: StepKind,
    /// The node state and queue accesses of the step executed at this
    /// decision point (filled in for scheduling steps once the step
    /// completes; empty for fault steps). This is the step's conflict
    /// footprint: two steps with disjoint footprints commute.
    pub footprint: Vec<Touch>,
}

/// A source of scheduling decisions.
pub trait Schedule: Send {
    /// Picks one of `n ≥ 1` runnable candidates (returns an index `< n`).
    fn choose(&mut self, n: usize) -> usize;

    /// Picks among *described* candidates. The default forwards to
    /// [`Schedule::choose`] with the candidate count, so plain schedules
    /// behave exactly as before; recording schedules override this to
    /// remember the candidate identities.
    fn choose_action(&mut self, candidates: &[ActionId]) -> usize {
        self.choose(candidates.len())
    }

    /// Picks a fault option for one message send under fault exploration
    /// (`n ≥ 2`; option 0 = deliver). Only called when
    /// [`crate::SimConfig::explore_faults`] is set. The default delivers,
    /// so random testing is unaffected by an accidental budget.
    fn choose_fault(&mut self, from: NodeId, to: NodeId, n: usize) -> usize {
        let _ = (from, to, n);
        0
    }

    /// Reports the conflict footprint of the scheduling step that just
    /// executed (its primary node's state and/or queue plus every send
    /// destination's queue, timer target's queue, and resumed process's
    /// state). Default: ignored.
    fn record_footprint(&mut self, touched: &[Touch]) {
        let _ = touched;
    }
}

/// The default schedule: uniform seeded choices.
#[derive(Debug)]
pub struct RandomSchedule(StdRng);

impl RandomSchedule {
    /// Creates a random schedule from a seed.
    pub fn new(seed: u64) -> Self {
        RandomSchedule(StdRng::seed_from_u64(seed))
    }
}

impl Schedule for RandomSchedule {
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

/// The recorded decisions of one run: the chosen index and the number of
/// candidates (arity) at every decision point, plus per-decision
/// metadata ([`StepInfo`]) when recorded through a [`ReplaySchedule`].
#[derive(Clone, Debug, Default)]
pub struct DecisionTrace {
    /// Chosen candidate per decision point.
    pub choices: Vec<u32>,
    /// Number of candidates per decision point.
    pub arities: Vec<u32>,
    /// Candidate identities and executed footprints per decision point
    /// (empty when the producing schedule does not record them).
    pub steps: Vec<StepInfo>,
}

impl DecisionTrace {
    /// The deepest decision point with an unexplored sibling, if any.
    pub fn last_branch_point(&self) -> Option<usize> {
        (0..self.choices.len()).rev().find(|&i| self.choices[i] + 1 < self.arities[i])
    }
}

/// A schedule that replays a decision prefix, then picks the first
/// candidate, recording everything — the building block of depth-first
/// schedule enumeration.
///
/// With [`ReplaySchedule::with_sleep`], the blind tail beyond the
/// prefix instead picks the first candidate *not* in an online sleep
/// set — the set of actions already explored from an equivalent state,
/// maintained from the caller-provided per-position additions and the
/// executed footprints. This lets a partial-order-reducing explorer
/// avoid running schedules it would only discard as redundant.
pub struct ReplaySchedule {
    prefix: Vec<u32>,
    pos: usize,
    last_sched: Option<usize>,
    trace: Arc<Mutex<DecisionTrace>>,
    /// Per-decision-position sleep additions: actions (with their
    /// observed footprints) fully explored from the state at that
    /// position, joining the sleep set once the position's step runs.
    plan: Vec<Vec<(ActionId, Vec<Touch>)>>,
    /// The online sleep set, filtered against each executed footprint.
    sleep: Vec<(ActionId, Vec<Touch>)>,
    /// Additions staged by the current step, applied at footprint time.
    pending: Vec<(ActionId, Vec<Touch>)>,
    steer: bool,
}

impl fmt::Debug for ReplaySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplaySchedule")
            .field("prefix_len", &self.prefix.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl ReplaySchedule {
    /// Creates a replay schedule; the recorded trace is readable through
    /// the returned handle after the run.
    pub fn new(prefix: Vec<u32>) -> (Self, Arc<Mutex<DecisionTrace>>) {
        let trace = Arc::new(Mutex::new(DecisionTrace::default()));
        (
            ReplaySchedule {
                prefix,
                pos: 0,
                last_sched: None,
                trace: trace.clone(),
                plan: Vec::new(),
                sleep: Vec::new(),
                pending: Vec::new(),
                steer: false,
            },
            trace,
        )
    }

    /// Creates a sleep-steered replay schedule. `plan[i]` lists the
    /// actions (with footprints) already fully explored from the state
    /// reached at decision position `i`; they enter the sleep set when
    /// that position's step executes, and each entry leaves the set as
    /// soon as an executed footprint intersects it. Beyond the prefix,
    /// the first candidate *not* asleep is chosen — picking an asleep
    /// action would replay a schedule equivalent to one already run.
    pub fn with_sleep(
        prefix: Vec<u32>,
        plan: Vec<Vec<(ActionId, Vec<Touch>)>>,
    ) -> (Self, Arc<Mutex<DecisionTrace>>) {
        let trace = Arc::new(Mutex::new(DecisionTrace::default()));
        (
            ReplaySchedule {
                prefix,
                pos: 0,
                last_sched: None,
                trace: trace.clone(),
                plan,
                sleep: Vec::new(),
                pending: Vec::new(),
                steer: true,
            },
            trace,
        )
    }

    /// The next choice: replay the prefix, then pick the first candidate.
    fn next(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        let choice = if self.pos < self.prefix.len() {
            // Replaying: the program is deterministic, so the arity at a
            // replayed position matches the recorded run — clamp anyway
            // for robustness.
            (self.prefix[self.pos] as usize).min(n - 1)
        } else {
            0
        };
        self.pos += 1;
        choice
    }

    fn record(&mut self, choice: usize, n: usize, kind: StepKind) {
        let mut t = self.trace.lock().expect("trace lock");
        t.choices.push(choice as u32);
        t.arities.push(n as u32);
        t.steps.push(StepInfo { kind, footprint: Vec::new() });
    }
}

impl Schedule for ReplaySchedule {
    fn choose(&mut self, n: usize) -> usize {
        let choice = self.next(n);
        self.last_sched = Some(self.pos - 1);
        self.record(choice, n, StepKind::Sched { candidates: Vec::new() });
        choice
    }

    fn choose_action(&mut self, candidates: &[ActionId]) -> usize {
        let p = self.pos;
        let choice = if self.steer && p >= self.prefix.len() {
            self.pos += 1;
            // Steer around the sleep set: picking an asleep candidate
            // would only rediscover an already-explored equivalence
            // class. When every candidate is asleep the state is fully
            // covered; pick 0 and let the explorer prune the run.
            (0..candidates.len())
                .find(|&c| !self.sleep.iter().any(|(a, _)| *a == candidates[c]))
                .unwrap_or(0)
        } else {
            self.next(candidates.len())
        };
        if self.steer {
            self.pending = self.plan.get(p).cloned().unwrap_or_default();
        }
        self.last_sched = Some(p);
        self.record(choice, candidates.len(), StepKind::Sched { candidates: candidates.to_vec() });
        choice
    }

    fn choose_fault(&mut self, from: NodeId, to: NodeId, n: usize) -> usize {
        let choice = self.next(n);
        self.record(choice, n, StepKind::Fault { from, to });
        choice
    }

    fn record_footprint(&mut self, touched: &[Touch]) {
        let Some(i) = self.last_sched else { return };
        {
            let mut t = self.trace.lock().expect("trace lock");
            let fp = &mut t.steps[i].footprint;
            for &n in touched {
                if !fp.contains(&n) {
                    fp.push(n);
                }
            }
        }
        if self.steer {
            // Sleep-set transition: actions proven-explored at this
            // state stay asleep below it unless the executed step's
            // footprint intersects theirs (a dependent step wakes them).
            let staged = std::mem::take(&mut self.pending);
            self.sleep.extend(staged);
            self.sleep.retain(|(_, f)| f.iter().all(|x| !touched.contains(x)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_in_range_and_deterministic() {
        let mut a = RandomSchedule::new(9);
        let mut b = RandomSchedule::new(9);
        for n in [1usize, 2, 3, 7] {
            let ca = a.choose(n);
            assert_eq!(ca, b.choose(n));
            assert!(ca < n);
        }
    }

    #[test]
    fn replay_follows_prefix_then_zero() {
        let (mut s, trace) = ReplaySchedule::new(vec![1, 2]);
        assert_eq!(s.choose(3), 1);
        assert_eq!(s.choose(4), 2);
        assert_eq!(s.choose(5), 0, "past the prefix: first candidate");
        let t = trace.lock().unwrap();
        assert_eq!(t.choices, vec![1, 2, 0]);
        assert_eq!(t.arities, vec![3, 4, 5]);
        assert_eq!(t.steps.len(), 3);
    }

    #[test]
    fn replay_clamps_out_of_range_prefix() {
        let (mut s, _) = ReplaySchedule::new(vec![9]);
        assert_eq!(s.choose(2), 1);
    }

    #[test]
    fn branch_point_detection() {
        let t =
            DecisionTrace { choices: vec![0, 1, 0], arities: vec![2, 2, 1], ..Default::default() };
        // Position 2 has arity 1 (no sibling); position 1 chose 1 of 2 (no
        // sibling left); position 0 chose 0 of 2 — has a sibling.
        assert_eq!(t.last_branch_point(), Some(0));
        let done = DecisionTrace { choices: vec![1, 1], arities: vec![2, 2], ..Default::default() };
        assert_eq!(done.last_branch_point(), None);
        assert_eq!(DecisionTrace::default().last_branch_point(), None);
    }

    #[test]
    fn action_identities_and_footprints_are_recorded() {
        let (mut s, trace) = ReplaySchedule::new(vec![1]);
        let cands = [
            ActionId::Syscall { proc: 0 },
            ActionId::Deliver { from: NodeId(0), to: NodeId(1), seq: 3 },
        ];
        assert_eq!(s.choose_action(&cands), 1);
        s.record_footprint(&[
            Touch::State(NodeId(1)),
            Touch::Queue(NodeId(2)),
            Touch::State(NodeId(1)),
        ]);
        // A fault decision interleaves without disturbing the footprint
        // attribution (it attaches to the last *scheduling* step).
        assert_eq!(s.choose_fault(NodeId(0), NodeId(1), 2), 0);
        s.record_footprint(&[Touch::State(NodeId(0))]);
        let t = trace.lock().unwrap();
        assert_eq!(t.choices, vec![1, 0]);
        match &t.steps[0].kind {
            StepKind::Sched { candidates } => assert_eq!(candidates.as_slice(), &cands),
            other => panic!("{other:?}"),
        }
        assert!(matches!(t.steps[1].kind, StepKind::Fault { .. }));
        assert_eq!(
            t.steps[0].footprint,
            vec![Touch::State(NodeId(1)), Touch::Queue(NodeId(2)), Touch::State(NodeId(0))]
        );
        assert!(t.steps[1].footprint.is_empty());
    }

    #[test]
    fn fault_choices_default_to_deliver() {
        let mut s = RandomSchedule::new(1);
        assert_eq!(s.choose_fault(NodeId(0), NodeId(1), 3), 0);
    }

    #[test]
    fn action_id_display() {
        assert_eq!(ActionId::Syscall { proc: 2 }.to_string(), "syscall(P2)");
        assert_eq!(
            ActionId::Deliver { from: NodeId(0), to: NodeId(1), seq: 5 }.to_string(),
            "deliver(n0->n1#5)"
        );
        assert_eq!(ActionId::Timer { node: NodeId(3), seq: 1 }.to_string(), "timer(n3#1)");
        assert_eq!(ActionId::Crash { node: NodeId(2) }.to_string(), "crash(n2)");
        assert_eq!(ActionId::CrashRecover { node: NodeId(4) }.to_string(), "recover(n4)");
    }
}
