//! Structured execution tracing.
//!
//! When enabled (see [`Kernel::enable_tracing`](crate::Kernel)) the
//! simulator records one [`TraceEvent`] per interesting occurrence — a
//! span per message (send → delivery, with the protocol's vector
//! timestamp attached when one travels on the message), a span per stall,
//! and instants for syscalls, timers, and injected faults. The trace is
//! keyed by virtual [`SimTime`], so two runs from the same seed produce
//! byte-identical traces.
//!
//! Tracing is strictly opt-in: a disabled tracer is an `Option::None`
//! checked once per site, so the instrumented paths cost nothing beyond a
//! branch when tracing is off.
//!
//! Two export formats are supported:
//!
//! * [`Tracer::to_jsonl`] — one JSON object per line, easy to grep and to
//!   post-process;
//! * [`Tracer::to_chrome_trace`] — the Chrome trace-event JSON array that
//!   `chrome://tracing` and <https://ui.perfetto.dev> load directly.
//!   Virtual nanoseconds are mapped to trace microseconds, node ids to
//!   Perfetto threads.
//!
//! All JSON is hand-rolled (the workspace vendors no serialization
//! crates); [`json_escape`] covers the string subset we emit.

use std::fmt::Write as _;

use crate::time::SimTime;

/// One recorded occurrence: an instant (`dur == None`) or a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual start time.
    pub t: SimTime,
    /// Span duration; `None` marks an instant event.
    pub dur: Option<SimTime>,
    /// Category: `"msg"`, `"syscall"`, `"stall"`, `"timer"`, `"fault"`.
    pub cat: &'static str,
    /// Event name (message kind, syscall name, fault flavor, …).
    pub name: String,
    /// Track the event renders on (node / process index).
    pub track: u32,
    /// Free-form key/value annotations (`from`, `to`, `bytes`, `vclock`…).
    pub args: Vec<(&'static str, String)>,
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TraceEvent {
    fn args_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        s.push('}');
        s
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"t_ns\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"track\": {}",
            self.t.as_nanos(),
            json_escape(self.cat),
            json_escape(&self.name),
            self.track
        );
        if let Some(d) = self.dur {
            let _ = write!(s, ", \"dur_ns\": {}", d.as_nanos());
        }
        let _ = write!(s, ", \"args\": {}}}", self.args_json());
        s
    }

    /// Renders the event in Chrome trace-event format (`ph: "X"` complete
    /// span or `ph: "i"` instant; `ts`/`dur` in microseconds).
    pub fn to_chrome(&self) -> String {
        let ts = self.t.as_nanos() as f64 / 1_000.0;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {ts}",
            json_escape(&self.name),
            json_escape(self.cat),
            self.track
        );
        match self.dur {
            Some(d) => {
                let dur = d.as_nanos() as f64 / 1_000.0;
                let _ = write!(s, ", \"ph\": \"X\", \"dur\": {dur}");
            }
            None => {
                let _ = write!(s, ", \"ph\": \"i\", \"s\": \"t\"");
            }
        }
        let _ = write!(s, ", \"args\": {}}}", self.args_json());
        s
    }
}

/// Collects [`TraceEvent`]s during a run and exports them.
///
/// Obtain one from [`RunReport::trace`](crate::RunReport) after running a
/// kernel with tracing enabled.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Records a fully-formed event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Records an instant event.
    pub fn instant(&mut self, t: SimTime, cat: &'static str, name: impl Into<String>, track: u32) {
        self.record(TraceEvent { t, dur: None, cat, name: name.into(), track, args: Vec::new() });
    }

    /// Records a span.
    pub fn span(
        &mut self,
        t: SimTime,
        dur: SimTime,
        cat: &'static str,
        name: impl Into<String>,
        track: u32,
    ) {
        self.record(TraceEvent {
            t,
            dur: Some(dur),
            cat,
            name: name.into(),
            track,
            args: Vec::new(),
        });
    }

    /// Appends a key/value annotation to the most recently recorded
    /// event, if any. Protocols use this to attach metadata (e.g. a
    /// vector timestamp) to the message span the network just recorded.
    pub fn annotate_last(&mut self, key: &'static str, value: String) {
        if let Some(ev) = self.events.last_mut() {
            ev.args.push((key, value));
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the recorded events in record order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Renders the whole trace as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_jsonl());
            s.push('\n');
        }
        s
    }

    /// Renders the whole trace as a Chrome trace-event JSON array that
    /// Perfetto / `chrome://tracing` load directly.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            s.push_str(&ev.to_chrome());
            if i + 1 < self.events.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("], \"displayTimeUnit\": \"ns\"}\n");
        s
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes the Chrome-trace rendering to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tracer {
        let mut tr = Tracer::new();
        tr.span(SimTime::from_micros(1), SimTime::from_micros(3), "msg", "update", 0);
        tr.annotate_last("from", "0".to_string());
        tr.annotate_last("vclock", "[1, 0]".to_string());
        tr.instant(SimTime::from_micros(2), "fault", "drop", 1);
        tr
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let tr = sample();
        let jsonl = tr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dur_ns\": 3000"));
        assert!(lines[0].contains("\"vclock\": \"[1, 0]\""));
        assert!(lines[1].contains("\"cat\": \"fault\""));
        assert!(!lines[1].contains("dur_ns"), "instants carry no duration");
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let tr = sample();
        let chrome = tr.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\": \"X\""), "span event present");
        assert!(chrome.contains("\"dur\": 3"), "3µs span duration");
        assert!(chrome.contains("\"ph\": \"i\""), "instant event present");
        assert!(chrome.contains("\"ts\": 1"), "1µs start");
        assert!(chrome.trim_end().ends_with('}'));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn annotate_last_on_empty_is_a_no_op() {
        let mut tr = Tracer::new();
        tr.annotate_last("k", "v".to_string());
        assert!(tr.is_empty());
        assert_eq!(tr.len(), 0);
    }
}
