//! Virtual time.
//!
//! The simulator measures everything in *virtual nanoseconds*. Virtual
//! time is what the benchmark harness reports: it models the latency
//! structure the paper cares about (local accesses vs. network round
//! trips) independently of host wall-clock noise.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use mc_sim::SimTime;
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert_eq!(format!("{t}"), "3.500µs");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// The value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The value in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on underflow in debug builds (wrapping in release), like
    /// integer subtraction; use [`SimTime::saturating_sub`] when order is
    /// unknown.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1.0e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1.0e6)
        } else if ns >= 1_000 {
            write!(f, "{}.{:03}µs", ns / 1_000, ns % 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
        assert_eq!(SimTime::from_millis(2).as_millis_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((b * 3).as_nanos(), 120);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 140);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 180);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_micros(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_nanos(1500).to_string(), "1.500µs");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
