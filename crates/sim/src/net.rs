//! The simulated message-passing network: FIFO links, latency model,
//! delivery queue, and composable fault injection.
//!
//! Section 6 of the paper assumes "a message passing system with FIFO
//! communication channels". The network here delivers every message after
//! a configurable latency (`base + per_byte·size + jitter`), preserving
//! per-link FIFO order by default. That assumption can be *attacked* with
//! a [`FaultPlan`]: per-message drop and duplication probabilities,
//! reordering, timed partitions between node sets, and scheduled node
//! crash/restart windows that wipe in-flight deliveries. All faults are
//! drawn from the run's seeded RNG, so a faulty run is exactly as
//! reproducible as a clean one, and every injected fault is counted in
//! [`Metrics::faults`](crate::Metrics).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use crate::metrics::Metrics;
use crate::schedule::{Schedule, Touch};
use crate::time::SimTime;
use crate::trace::{TraceEvent, Tracer};

/// Identifier of a network node (a memory replica or a manager).
///
/// Nodes are numbered densely from zero; the binding between processes and
/// nodes is up to the protocol (typically process `i` lives on node `i`
/// and managers occupy the tail ids).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Message latency model: `base + per_byte·size` plus uniform jitter in
/// `[0, jitter]`.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Fixed per-message cost.
    pub base: SimTime,
    /// Cost per payload byte, in nanoseconds.
    pub per_byte_ns: u64,
    /// Upper bound of the uniform jitter term.
    pub jitter: SimTime,
}

impl LatencyModel {
    /// A zero-latency model (useful for algorithmic tests).
    pub const INSTANT: LatencyModel =
        LatencyModel { base: SimTime::ZERO, per_byte_ns: 0, jitter: SimTime::ZERO };

    /// Samples the latency of one message of `bytes` payload bytes.
    pub fn sample(&self, bytes: u64, rng: &mut StdRng) -> SimTime {
        let jitter = if self.jitter == SimTime::ZERO {
            0
        } else {
            rng.gen_range(0..=self.jitter.as_nanos())
        };
        self.base + SimTime::from_nanos(bytes * self.per_byte_ns + jitter)
    }
}

impl Default for LatencyModel {
    /// A LAN-like default: 5µs base, 2ns/byte, 1µs jitter.
    fn default() -> Self {
        LatencyModel {
            base: SimTime::from_micros(5),
            per_byte_ns: 2,
            jitter: SimTime::from_micros(1),
        }
    }
}

/// A timed network partition separating node set `a` from node set `b`.
///
/// While `from <= now < until`, every message between a node in `a` and a
/// node in `b` (either direction) is silently dropped. Nodes in neither
/// set are unaffected.
#[derive(Clone, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side of the cut.
    pub b: Vec<NodeId>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive) — the heal time.
    pub until: SimTime,
}

impl Partition {
    fn severs(&self, x: NodeId, y: NodeId, at: SimTime) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        let (in_a_x, in_b_x) = (self.a.contains(&x), self.b.contains(&x));
        let (in_a_y, in_b_y) = (self.a.contains(&y), self.b.contains(&y));
        (in_a_x && in_b_y) || (in_b_x && in_a_y)
    }
}

/// A scheduled crash (and optional restart) of one node.
///
/// While a node is down it neither sends nor receives: messages it would
/// have sent are suppressed and messages arriving at it are wiped —
/// including messages already in flight when the crash hits. The
/// *process* bound to the node keeps its program state (the paper's
/// processes are not the failure unit; the network interface is), so
/// after `restart_at` the protocol must re-earn convergence from its
/// peers — exactly what the session layer's retransmission provides.
#[derive(Clone, Copy, Debug)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// Crash time (inclusive).
    pub at: SimTime,
    /// Restart time (exclusive end of the outage), or `None` to stay down.
    pub restart_at: Option<SimTime>,
}

impl Crash {
    fn down(&self, node: NodeId, at: SimTime) -> bool {
        node == self.node && at >= self.at && self.restart_at.map(|r| at < r).unwrap_or(true)
    }
}

/// A composable, seeded fault-injection plan for the network.
///
/// The default plan is quiet: reliable FIFO links, the paper's Section 6
/// assumption. Builder methods switch individual faults on; everything is
/// decided from the run's seeded RNG and the virtual clock, so runs stay
/// deterministic per seed.
///
/// # Examples
///
/// ```
/// use mc_sim::{FaultPlan, NodeId, SimTime};
///
/// let plan = FaultPlan::new()
///     .drop_rate(0.05)
///     .duplicate_rate(0.02)
///     .reorder(SimTime::from_micros(40))
///     .partition(vec![NodeId(0)], vec![NodeId(1)],
///                SimTime::from_millis(1), SimTime::from_millis(2))
///     .crash(NodeId(2), SimTime::from_millis(3), Some(SimTime::from_millis(4)));
/// assert!(!plan.is_quiet());
/// assert!(plan.is_down(NodeId(2), SimTime::from_millis(3)));
/// assert!(!plan.is_down(NodeId(2), SimTime::from_millis(4)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a message is delivered twice; the
    /// duplicate trails the original by an independent latency sample.
    pub duplicate: f64,
    /// Extra delivery jitter enabling reordering. `Some(j)` lifts per-link
    /// FIFO serialization and adds uniform extra delay in `[0, j]`.
    pub reorder: Option<SimTime>,
    /// Timed partitions between node sets.
    pub partitions: Vec<Partition>,
    /// Scheduled node outages.
    pub crashes: Vec<Crash>,
    /// Scheduled crash-recover events: at each `(node, at)` the node
    /// atomically loses its volatile state and in-flight deliveries, then
    /// recovers from whatever the protocol persisted (see
    /// [`Protocol::on_crash_recover`](crate::Protocol::on_crash_recover)).
    pub crash_recovers: Vec<(NodeId, SimTime)>,
}

impl FaultPlan {
    /// A quiet plan (reliable FIFO network).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop rate {p} out of [0,1]");
        self.drop = p;
        self
    }

    /// Sets the per-message duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate rate {p} out of [0,1]");
        self.duplicate = p;
        self
    }

    /// Enables reordering: lifts per-link FIFO serialization and adds
    /// uniform extra delivery jitter in `[0, jitter]`.
    pub fn reorder(mut self, jitter: SimTime) -> Self {
        self.reorder = Some(jitter);
        self
    }

    /// Adds a timed partition between node sets `a` and `b`, active for
    /// `from <= now < until`.
    pub fn partition(
        mut self,
        a: Vec<NodeId>,
        b: Vec<NodeId>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Schedules a crash of `node` at `at`, restarting at `restart_at`
    /// (or never, if `None`).
    pub fn crash(mut self, node: NodeId, at: SimTime, restart_at: Option<SimTime>) -> Self {
        self.crashes.push(Crash { node, at, restart_at });
        self
    }

    /// Schedules an atomic crash-recover of `node` at `at`: volatile
    /// protocol state and in-flight deliveries to the node are wiped at
    /// that instant, and the node immediately rejoins from its durable
    /// storage. Unlike [`FaultPlan::crash`] with a restart, the node's
    /// disk contents survive and the protocol's recovery path runs.
    pub fn crash_recover(mut self, node: NodeId, at: SimTime) -> Self {
        self.crash_recovers.push((node, at));
        self
    }

    /// `true` if the plan injects no faults at all.
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder.is_none()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.crash_recovers.is_empty()
    }

    /// `true` if `node` is crashed at time `at`.
    pub fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.crashes.iter().any(|c| c.down(node, at))
    }

    /// `true` if a partition severs the `x`–`y` link at time `at`.
    pub fn is_partitioned(&self, x: NodeId, y: NodeId, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(x, y, at))
    }

    /// `true` if `node` crashes within the half-open window `(after, upto]`
    /// — i.e. a message in flight over that window would be wiped.
    fn crashes_within(&self, node: NodeId, after: SimTime, upto: SimTime) -> bool {
        self.crashes.iter().any(|c| c.node == node && c.at > after && c.at <= upto)
    }
}

/// A budget of *explored* faults, as opposed to the *sampled* faults of
/// [`FaultPlan`].
///
/// Under a fault plan, whether a given message is dropped is a coin flip
/// from the run's RNG — good for statistical testing, invisible to
/// exhaustive exploration. Under a fault budget, each message send
/// becomes a recorded *decision point* ([`Schedule::choose_fault`]):
/// deliver, drop (while drops remain in the budget), or duplicate (while
/// duplicates remain). Listed nodes may additionally crash at any
/// scheduling point, permanently. Exploration then enumerates every
/// combination of fault placements alongside every schedule, and any
/// violation found is replayable from its decision trace alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultBudget {
    /// Maximum number of message drops per run.
    pub max_drops: u32,
    /// Maximum number of message duplications per run.
    pub max_duplicates: u32,
    /// Nodes that may crash (permanently) at any scheduling point.
    pub crashes: Vec<NodeId>,
    /// Nodes that may crash *and recover from durable storage* (once per
    /// run) at any scheduling point.
    pub recovers: Vec<NodeId>,
}

impl FaultBudget {
    /// An empty budget (no faults explored).
    pub fn new() -> Self {
        FaultBudget::default()
    }

    /// Allows up to `n` message drops per run.
    pub fn drops(mut self, n: u32) -> Self {
        self.max_drops = n;
        self
    }

    /// Allows up to `n` message duplications per run.
    pub fn duplicates(mut self, n: u32) -> Self {
        self.max_duplicates = n;
        self
    }

    /// Allows `node` to crash permanently at any scheduling point.
    pub fn crash_of(mut self, node: NodeId) -> Self {
        if !self.crashes.contains(&node) {
            self.crashes.push(node);
        }
        self
    }

    /// Allows `node` to crash and recover from durable storage (once per
    /// run) at any scheduling point. Exploration enumerates the recovery
    /// timing alongside every schedule, which is how the "no acknowledged
    /// write is lost" property gets checked under crash-recover faults.
    pub fn crash_recover_of(mut self, node: NodeId) -> Self {
        if !self.recovers.contains(&node) {
            self.recovers.push(node);
        }
        self
    }

    /// `true` if the budget admits no faults at all.
    pub fn is_empty(&self) -> bool {
        self.max_drops == 0
            && self.max_duplicates == 0
            && self.crashes.is_empty()
            && self.recovers.is_empty()
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for every random choice (latency jitter, tie-breaking, faults).
    pub seed: u64,
    /// The message latency model.
    pub latency: LatencyModel,
    /// Virtual cost charged per process syscall.
    pub local_cost: SimTime,
    /// The fault-injection plan. The default ([`FaultPlan::is_quiet`])
    /// preserves per-link FIFO delivery (the paper's assumption) *and*
    /// per-link bandwidth serialization.
    pub faults: FaultPlan,
    /// Fault *exploration* budget: when set, each message send becomes a
    /// schedule decision point (deliver / drop / duplicate) and the listed
    /// nodes may crash at any step — see [`FaultBudget`]. Orthogonal to
    /// the sampled `faults` plan; meant for exhaustive exploration.
    pub explore_faults: Option<FaultBudget>,
    /// Abort the run after this many simulator events (runaway guard).
    pub max_events: u64,
}

impl SimConfig {
    /// A configuration with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig { seed, ..SimConfig::default() }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::default(),
            local_cost: SimTime::from_nanos(100),
            faults: FaultPlan::default(),
            explore_faults: None,
            max_events: 100_000_000,
        }
    }
}

/// A scheduled message delivery.
#[derive(Debug)]
pub(crate) struct Delivery<M> {
    pub at: SimTime,
    pub seq: u64,
    pub from: NodeId,
    pub to: NodeId,
    /// When the message was sent (feeds the delivery-latency histogram).
    pub sent: SimTime,
    pub msg: M,
}

impl<M> PartialEq for Delivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Delivery<M> {}

impl<M> PartialOrd for Delivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Delivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A pending protocol timer (see [`NetCtx::set_timer`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    pub at: SimTime,
    pub seq: u64,
    pub node: NodeId,
    pub token: u64,
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The network state owned by the kernel.
#[derive(Debug)]
pub(crate) struct Network<M> {
    pub queue: BinaryHeap<Reverse<Delivery<M>>>,
    pub link_last: HashMap<(NodeId, NodeId), SimTime>,
    pub next_seq: u64,
    pub timers: BinaryHeap<Reverse<TimerEntry>>,
    pub next_timer_seq: u64,
    pub nnodes: usize,
    /// Message drops spent from the [`FaultBudget`] this run.
    pub drops_used: u32,
    /// Message duplications spent from the [`FaultBudget`] this run.
    pub dups_used: u32,
    /// Nodes crashed by *explored* crash actions (permanent).
    pub downed: Vec<NodeId>,
    /// Nodes that already spent their explored crash-recover this run
    /// (each [`FaultBudget::crash_recover_of`] node recovers at most once
    /// per run, keeping the candidate set finite).
    pub recovers_used: Vec<NodeId>,
    /// State and queue accesses since the last footprint flush: every
    /// send destination and timer target of the currently executing step
    /// (queue touches), plus whatever the kernel attributes to the step
    /// itself.
    pub touched: Vec<Touch>,
    /// The structured event trace, when tracing is enabled
    /// (see [`Kernel::enable_tracing`](crate::Kernel::enable_tracing)).
    pub tracer: Option<Tracer>,
}

impl<M> Network<M> {
    pub fn new(nnodes: usize) -> Self {
        Network {
            queue: BinaryHeap::new(),
            link_last: HashMap::new(),
            next_seq: 0,
            timers: BinaryHeap::new(),
            next_timer_seq: 0,
            nnodes,
            drops_used: 0,
            dups_used: 0,
            downed: Vec::new(),
            recovers_used: Vec::new(),
            touched: Vec::new(),
            tracer: None,
        }
    }

    /// `true` if `node` was taken down by an explored crash action.
    pub fn is_downed(&self, node: NodeId) -> bool {
        self.downed.contains(&node)
    }

    /// Executes an explored crash: `node` goes down permanently,
    /// in-flight deliveries to it are wiped, and its pending timers are
    /// cancelled (unlike [`FaultPlan::crash`] outages, explored crashes
    /// are final, so a downed node's timers can never fire again — leaving
    /// them queued would only manufacture unreachable decision points).
    ///
    /// Returns `(wiped_deliveries, cancelled_timers)` so the caller can
    /// keep the conservation counters honest.
    pub fn crash_node(&mut self, node: NodeId) -> (u64, u64) {
        if self.is_downed(node) {
            return (0, 0);
        }
        self.downed.push(node);
        let queue = std::mem::take(&mut self.queue);
        let in_flight = queue.len();
        self.queue = queue.into_iter().filter(|Reverse(d)| d.to != node).collect();
        let wiped = (in_flight - self.queue.len()) as u64;
        let timers = std::mem::take(&mut self.timers);
        let armed = timers.len();
        self.timers = timers.into_iter().filter(|Reverse(t)| t.node != node).collect();
        let cancelled = (armed - self.timers.len()) as u64;
        (wiped, cancelled)
    }

    /// Brings a downed node back up (the second half of a crash-recover:
    /// [`Network::crash_node`] wipes, `revive` rejoins). The node's wiped
    /// queue and cancelled timers stay wiped — only future I/O resumes.
    pub fn revive(&mut self, node: NodeId) {
        self.downed.retain(|&n| n != node);
    }
}

/// The interface protocols use to interact with the network and clock.
///
/// Handed to every [`Protocol`](crate::Protocol) callback; sending is
/// asynchronous (fire-and-forget), matching the paper's non-blocking
/// update broadcasts.
pub struct NetCtx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) net: &'a mut Network<M>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) config: &'a SimConfig,
    /// The run's schedule, consulted for explored fault decisions
    /// (`None` when no exploration is in progress).
    pub(crate) sched: Option<&'a mut dyn Schedule>,
}

impl<M: fmt::Debug> fmt::Debug for NetCtx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetCtx")
            .field("now", &self.now)
            .field("net", &self.net)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<M> NetCtx<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of network nodes.
    pub fn nnodes(&self) -> usize {
        self.net.nnodes
    }

    /// The seeded random-number generator of the run.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.config.faults
    }

    /// `true` when structured tracing is enabled for this run.
    pub fn tracing(&self) -> bool {
        self.net.tracer.is_some()
    }

    /// Appends a key/value annotation to the most recently traced event.
    ///
    /// Protocols use this right after a [`send`](NetCtx::send) to attach
    /// metadata the network layer cannot know — notably the vector
    /// timestamp travelling on an update message. A no-op when tracing is
    /// disabled, so callers may annotate unconditionally. Callers that
    /// build an expensive annotation string should gate on
    /// [`tracing`](NetCtx::tracing) first.
    pub fn trace_annotate(&mut self, key: &'static str, value: String) {
        if let Some(tr) = self.net.tracer.as_mut() {
            tr.annotate_last(key, value);
        }
    }

    /// Records the backoff interval a retransmission waited, feeding the
    /// RTO histogram in [`Metrics`].
    pub fn record_rto(&mut self, rto: SimTime) {
        self.metrics.record_rto(rto);
    }

    /// Records `n` write-ahead-log records appended (staged) by the
    /// protocol's durable storage.
    pub fn record_wal_append(&mut self, n: u64) {
        self.metrics.wal.appends += n;
    }

    /// Records `n` staged WAL records made durable by an fsync. Calls
    /// with `n == 0` are no-ops (an fsync of an empty tail is free and
    /// not counted).
    pub fn record_wal_sync(&mut self, n: u64) {
        if n > 0 {
            self.metrics.wal.synced += n;
            self.metrics.wal.fsyncs += 1;
        }
    }

    /// Records `n` staged WAL records lost to a crash before their fsync.
    pub fn record_wal_lost(&mut self, n: u64) {
        self.metrics.wal.lost += n;
    }

    /// Records `n` durable WAL records replayed during a recovery.
    pub fn record_wal_replayed(&mut self, n: u64) {
        self.metrics.wal.replayed += n;
    }

    /// Records one compacted snapshot installed by the protocol.
    pub fn record_snapshot(&mut self) {
        self.metrics.wal.snapshots += 1;
    }

    /// Records a fault instant in the trace (no-op when tracing is off).
    fn trace_fault(&mut self, name: &'static str, from: NodeId, to: NodeId, kind: &'static str) {
        if let Some(tr) = self.net.tracer.as_mut() {
            tr.record(TraceEvent {
                t: self.now,
                dur: None,
                cat: "fault",
                name: name.to_string(),
                track: to.0,
                args: vec![
                    ("from", from.0.to_string()),
                    ("to", to.0.to_string()),
                    ("kind", kind.to_string()),
                ],
            });
        }
    }

    /// Schedules a protocol timer at `node`, `delay` from now.
    ///
    /// When it expires the kernel calls
    /// [`Protocol::on_timer`](crate::Protocol::on_timer) with `token`.
    /// Timers cannot be cancelled; protocols that re-arm conditionally
    /// should treat stale expirations as no-ops.
    pub fn set_timer(&mut self, node: NodeId, delay: SimTime, token: u64) {
        assert!(node.index() < self.net.nnodes, "timer on unknown node {node}");
        // Arming a timer only enqueues at `node`; it reads no replica
        // state there, so it commutes with `node`'s local operations.
        self.net.touched.push(Touch::Queue(node));
        if self.net.is_downed(node) {
            // An explored crash is permanent: the timer could never fire.
            return;
        }
        let seq = self.net.next_timer_seq;
        self.net.next_timer_seq += 1;
        self.metrics.timers_set += 1;
        let at = self.now + delay;
        self.net.timers.push(Reverse(TimerEntry { at, seq, node, token }));
        if let Some(tr) = self.net.tracer.as_mut() {
            tr.record(TraceEvent {
                t: self.now,
                dur: None,
                cat: "timer",
                name: "timer_set".to_string(),
                track: node.0,
                args: vec![
                    ("token", token.to_string()),
                    ("fires_at_ns", at.as_nanos().to_string()),
                ],
            });
        }
    }

    /// Sends `msg` from `from` to `to`, subject to the fault plan.
    ///
    /// `kind` labels the message in the metrics; `bytes` is the modeled
    /// payload size (it feeds the latency model and byte counters). The
    /// send is counted in the metrics even when a fault then suppresses
    /// its delivery — the sender paid for it either way.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or if `from == to`
    /// (local interactions are not messages).
    pub fn send(&mut self, from: NodeId, to: NodeId, kind: &'static str, bytes: u64, msg: M)
    where
        M: Clone,
    {
        assert!(from.index() < self.net.nnodes, "send from unknown node {from}");
        assert!(to.index() < self.net.nnodes, "send to unknown node {to}");
        assert_ne!(from, to, "a node does not message itself");
        self.metrics.record_send(kind, bytes);
        // The destination's *queue* joins the sending step's conflict
        // footprint whether or not the message survives the fault
        // gauntlet: the attempt already orders this step against other
        // queue activity at `to` (deliveries, competing sends) — but a
        // send reads none of `to`'s replica state, so it commutes with
        // `to`'s purely local steps.
        self.net.touched.push(Touch::Queue(to));

        let faults = &self.config.faults;
        if faults.is_down(from, self.now) || self.net.is_downed(from) {
            // A crashed node's sends never reach the wire.
            self.metrics.faults.crash_dropped += 1;
            self.trace_fault("crash_drop", from, to, kind);
            return;
        }
        if faults.is_partitioned(from, to, self.now) {
            self.metrics.faults.partition_dropped += 1;
            self.trace_fault("partition_drop", from, to, kind);
            return;
        }
        if faults.drop > 0.0 && self.rng.gen_bool(faults.drop) {
            self.metrics.faults.dropped += 1;
            self.trace_fault("drop", from, to, kind);
            return;
        }

        let latency = self.config.latency.sample(bytes, self.rng);
        let mut at = self.now + latency;
        match faults.reorder {
            None => {
                // Finite link bandwidth: a link is occupied for the
                // message's transmission time, so back-to-back sends on one
                // link are serialized (store-and-forward). This also
                // preserves FIFO.
                let tx = SimTime::from_nanos(bytes * self.config.latency.per_byte_ns);
                let last = self.net.link_last.entry((from, to)).or_insert(SimTime::ZERO);
                if at < *last + tx {
                    at = *last + tx;
                }
                *last = at;
            }
            Some(jitter) if jitter > SimTime::ZERO => {
                at += SimTime::from_nanos(self.rng.gen_range(0..=jitter.as_nanos()));
            }
            Some(_) => {}
        }

        // Explored fault decision: with a budget and a schedule present,
        // this send's fate is a recorded branch point. Option 0 is always
        // "deliver"; drop and duplicate follow while their budgets last.
        let mut explored_duplicate = false;
        if let Some(budget) = &self.config.explore_faults {
            if let Some(sched) = self.sched.as_deref_mut() {
                let can_drop = self.net.drops_used < budget.max_drops;
                let can_dup = self.net.dups_used < budget.max_duplicates;
                let n = 1 + usize::from(can_drop) + usize::from(can_dup);
                if n > 1 {
                    let choice = sched.choose_fault(from, to, n);
                    if can_drop && choice == 1 {
                        self.net.drops_used += 1;
                        self.metrics.faults.dropped += 1;
                        self.trace_fault("drop", from, to, kind);
                        return;
                    }
                    if choice == n - 1 && can_dup && choice > 0 {
                        self.net.dups_used += 1;
                        explored_duplicate = true;
                    }
                }
            }
        }

        let duplicate =
            explored_duplicate || (faults.duplicate > 0.0 && self.rng.gen_bool(faults.duplicate));
        self.deliver_or_wipe(from, to, at, kind, bytes, msg.clone());
        if duplicate {
            // The duplicate trails the original by an independent latency
            // sample — like a retransmission by a confused switch — and is
            // never FIFO-serialized, so it can land out of order.
            self.metrics.faults.duplicated += 1;
            self.trace_fault("duplicate", from, to, kind);
            let extra = self.config.latency.sample(bytes, self.rng);
            let dup_at = at + extra;
            self.deliver_or_wipe(from, to, dup_at, kind, bytes, msg);
        }
    }

    /// Queues one delivery unless a crash wipes it in flight.
    fn deliver_or_wipe(
        &mut self,
        from: NodeId,
        to: NodeId,
        at: SimTime,
        kind: &'static str,
        bytes: u64,
        msg: M,
    ) {
        let faults = &self.config.faults;
        if self.net.is_downed(to)
            || faults.is_down(to, at)
            || faults.crashes_within(to, self.now, at)
        {
            self.metrics.faults.crash_dropped += 1;
            self.trace_fault("crash_drop", from, to, kind);
            return;
        }
        let seq = self.net.next_seq;
        self.net.next_seq += 1;
        self.net.queue.push(Reverse(Delivery { at, seq, from, to, sent: self.now, msg }));
        if let Some(tr) = self.net.tracer.as_mut() {
            // The in-flight message renders as a span on the sender's
            // track, from the send to the scheduled delivery.
            tr.record(TraceEvent {
                t: self.now,
                dur: Some(at.saturating_sub(self.now)),
                cat: "msg",
                name: kind.to_string(),
                track: from.0,
                args: vec![
                    ("from", from.0.to_string()),
                    ("to", to.0.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            });
        }
    }

    /// Broadcasts `msg` from `from` to every other node.
    pub fn broadcast(&mut self, from: NodeId, kind: &'static str, bytes: u64, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.net.nnodes as u32 {
            if to != from.0 {
                self.send(from, NodeId(to), kind, bytes, msg.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (Network<u32>, StdRng, Metrics, SimConfig) {
        (Network::new(3), StdRng::seed_from_u64(7), Metrics::new(), SimConfig::with_seed(7))
    }

    #[test]
    fn send_schedules_delivery_after_latency() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(1), "test", 8, 42);
        assert_eq!(metrics.messages, 1);
        let Reverse(d) = net.queue.pop().unwrap();
        assert!(d.at >= config.latency.base);
        assert_eq!(d.msg, 42);
        assert_eq!((d.from, d.to), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn fifo_preserves_link_order() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.latency.jitter = SimTime::from_millis(1); // huge jitter
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        for i in 0..50u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut order = Vec::new();
        while let Some(Reverse(d)) = net.queue.pop() {
            assert!((d.at, d.seq) >= last, "heap pops in time order");
            last = (d.at, d.seq);
            order.push(d.msg);
        }
        // FIFO: payloads in send order.
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn reordering_fault_can_reorder() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.faults = FaultPlan::new().reorder(SimTime::from_millis(1));
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        for i in 0..50u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        let mut order = Vec::new();
        while let Some(Reverse(d)) = net.queue.pop() {
            order.push(d.msg);
        }
        let expect: Vec<u32> = (0..50).collect();
        assert_ne!(order, expect, "with huge extra jitter some reordering occurs");
    }

    #[test]
    fn drop_faults_suppress_deliveries_but_count_sends() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.faults = FaultPlan::new().drop_rate(0.5);
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        for i in 0..200u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        assert_eq!(metrics.messages, 200, "sends are counted before faults");
        let delivered = net.queue.len() as u64;
        assert_eq!(delivered + metrics.faults.dropped, 200);
        assert!(metrics.faults.dropped > 50, "p=0.5 drops roughly half");
        assert!(delivered > 50);
    }

    #[test]
    fn duplicate_faults_add_trailing_copies() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.faults = FaultPlan::new().duplicate_rate(1.0);
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(1), "test", 0, 7);
        assert_eq!(metrics.messages, 1);
        assert_eq!(metrics.faults.duplicated, 1);
        let mut ats = Vec::new();
        while let Some(Reverse(d)) = net.queue.pop() {
            assert_eq!(d.msg, 7);
            ats.push(d.at);
        }
        assert_eq!(ats.len(), 2);
        assert!(ats[1] > ats[0], "duplicate trails the original");
    }

    #[test]
    fn partitions_cut_both_directions_then_heal() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.faults = FaultPlan::new().partition(
            vec![NodeId(0)],
            vec![NodeId(1)],
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        {
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            ctx.send(NodeId(0), NodeId(1), "test", 0, 1);
            ctx.send(NodeId(1), NodeId(0), "test", 0, 2);
            // A link outside the cut is unaffected.
            ctx.send(NodeId(2), NodeId(0), "test", 0, 3);
        }
        assert_eq!(metrics.faults.partition_dropped, 2);
        assert_eq!(net.queue.len(), 1);
        // After the heal everything flows again.
        let mut ctx = NetCtx {
            now: SimTime::from_millis(1),
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(1), "test", 0, 4);
        assert_eq!(metrics.faults.partition_dropped, 2);
        assert_eq!(net.queue.len(), 2);
    }

    #[test]
    fn crashes_wipe_in_flight_and_suppress_io() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.latency = LatencyModel::INSTANT;
        config.faults = FaultPlan::new().crash(
            NodeId(1),
            SimTime::from_micros(10),
            Some(SimTime::from_micros(20)),
        );
        // In flight across the crash time: wiped.
        {
            let mut cfg2 = config.clone();
            cfg2.latency = LatencyModel {
                base: SimTime::from_micros(15),
                per_byte_ns: 0,
                jitter: SimTime::ZERO,
            };
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &cfg2,
                sched: None,
            };
            ctx.send(NodeId(0), NodeId(1), "test", 0, 1);
        }
        assert_eq!(metrics.faults.crash_dropped, 1);
        // Arriving while down: wiped.
        {
            let mut ctx = NetCtx {
                now: SimTime::from_micros(12),
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            ctx.send(NodeId(0), NodeId(1), "test", 0, 2);
        }
        assert_eq!(metrics.faults.crash_dropped, 2);
        // Sent by the crashed node while down: suppressed.
        {
            let mut ctx = NetCtx {
                now: SimTime::from_micros(12),
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            ctx.send(NodeId(1), NodeId(0), "test", 0, 3);
        }
        assert_eq!(metrics.faults.crash_dropped, 3);
        assert!(net.queue.is_empty());
        // After restart the node participates again.
        let mut ctx = NetCtx {
            now: SimTime::from_micros(25),
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(1), "test", 0, 4);
        ctx.send(NodeId(1), NodeId(0), "test", 0, 5);
        assert_eq!(net.queue.len(), 2);
        assert_eq!(metrics.faults.crash_dropped, 3);
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net: Network<u32> = Network::new(3);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut metrics = Metrics::new();
            let mut config = SimConfig::with_seed(seed);
            config.faults = FaultPlan::new()
                .drop_rate(0.2)
                .duplicate_rate(0.2)
                .reorder(SimTime::from_micros(50));
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            for i in 0..500u32 {
                ctx.send(NodeId(0), NodeId(1), "test", 4, i);
            }
            (metrics.faults, net.queue.len())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "different seeds draw different faults");
    }

    #[test]
    fn timers_are_ordered_and_counted() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.set_timer(NodeId(1), SimTime::from_micros(30), 7);
        ctx.set_timer(NodeId(0), SimTime::from_micros(10), 3);
        assert_eq!(metrics.timers_set, 2);
        let Reverse(first) = net.timers.pop().unwrap();
        assert_eq!((first.node, first.token), (NodeId(0), 3));
        let Reverse(second) = net.timers.pop().unwrap();
        assert_eq!((second.node, second.token), (NodeId(1), 7));
        assert!(second.at > first.at);
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.broadcast(NodeId(1), "update", 4, 9);
        assert_eq!(metrics.messages, 2);
        let targets: Vec<NodeId> = net.queue.drain().map(|Reverse(d)| d.to).collect();
        assert!(targets.contains(&NodeId(0)) && targets.contains(&NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "does not message itself")]
    fn self_send_panics() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(0), "test", 0, 0);
    }

    /// A schedule that returns a fixed fault choice at every fault
    /// decision point (and 0 elsewhere).
    struct FixedFault(usize);

    impl Schedule for FixedFault {
        fn choose(&mut self, _n: usize) -> usize {
            0
        }
        fn choose_fault(&mut self, _from: NodeId, _to: NodeId, n: usize) -> usize {
            self.0.min(n - 1)
        }
    }

    #[test]
    fn fault_budget_branches_drop_until_spent() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.explore_faults = Some(FaultBudget::new().drops(2));
        let mut sched = FixedFault(1); // always pick "drop" while allowed
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: Some(&mut sched),
        };
        for i in 0..5u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        assert_eq!(metrics.faults.dropped, 2, "budget caps explored drops");
        assert_eq!(net.queue.len(), 3, "remaining sends deliver normally");
        assert_eq!(net.drops_used, 2);
    }

    #[test]
    fn fault_budget_duplicate_option_spends_budget() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.latency = LatencyModel::INSTANT;
        config.explore_faults = Some(FaultBudget::new().duplicates(1));
        let mut sched = FixedFault(1); // with only dup available: option 1
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: Some(&mut sched),
        };
        ctx.send(NodeId(0), NodeId(1), "test", 0, 7);
        ctx.send(NodeId(0), NodeId(1), "test", 0, 8);
        assert_eq!(metrics.faults.duplicated, 1);
        assert_eq!(net.queue.len(), 3, "one original duplicated, one plain");
        assert_eq!(net.dups_used, 1);
    }

    #[test]
    fn fault_budget_without_schedule_delivers_everything() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.explore_faults = Some(FaultBudget::new().drops(5).duplicates(5));
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        for i in 0..4u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        assert_eq!(net.queue.len(), 4);
        assert_eq!(metrics.faults.dropped, 0);
    }

    #[test]
    fn explored_crash_is_permanent_and_purges_state() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        {
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            ctx.send(NodeId(0), NodeId(1), "test", 0, 1);
            ctx.send(NodeId(0), NodeId(2), "test", 0, 2);
            ctx.set_timer(NodeId(1), SimTime::from_micros(5), 9);
            ctx.set_timer(NodeId(2), SimTime::from_micros(5), 9);
        }
        let (wiped, cancelled) = net.crash_node(NodeId(1));
        assert_eq!((wiped, cancelled), (1, 1), "crash reports what it wiped");
        assert!(net.is_downed(NodeId(1)));
        assert_eq!(net.queue.len(), 1, "delivery to the downed node wiped");
        assert_eq!(net.timers.len(), 1, "timer at the downed node cancelled");
        assert_eq!(net.crash_node(NodeId(1)), (0, 0), "second crash is a no-op");
        // While down: no new I/O or timers involving the node.
        let mut ctx = NetCtx {
            now: SimTime::from_micros(1),
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(1), "test", 0, 3);
        ctx.send(NodeId(1), NodeId(0), "test", 0, 4);
        ctx.set_timer(NodeId(1), SimTime::from_micros(5), 9);
        assert_eq!(net.queue.len(), 1);
        assert_eq!(net.timers.len(), 1);
        assert_eq!(metrics.faults.crash_dropped, 2);
    }

    #[test]
    fn sends_and_timers_record_touched_nodes() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx {
            now: SimTime::ZERO,
            net: &mut net,
            rng: &mut rng,
            metrics: &mut metrics,
            config: &config,
            sched: None,
        };
        ctx.send(NodeId(0), NodeId(2), "test", 0, 1);
        ctx.set_timer(NodeId(1), SimTime::from_micros(5), 0);
        assert_eq!(net.touched, vec![Touch::Queue(NodeId(2)), Touch::Queue(NodeId(1))]);
    }

    #[test]
    fn tracing_records_spans_faults_and_annotations() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        net.tracer = Some(Tracer::new());
        config.faults = FaultPlan::new().drop_rate(1.0);
        {
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            assert!(ctx.tracing());
            ctx.send(NodeId(0), NodeId(1), "update", 8, 1);
        }
        config.faults = FaultPlan::new();
        {
            let mut ctx = NetCtx {
                now: SimTime::ZERO,
                net: &mut net,
                rng: &mut rng,
                metrics: &mut metrics,
                config: &config,
                sched: None,
            };
            ctx.send(NodeId(0), NodeId(1), "update", 8, 2);
            ctx.trace_annotate("vclock", "[1, 0, 0]".to_string());
            ctx.set_timer(NodeId(0), SimTime::from_micros(5), 3);
            ctx.record_rto(SimTime::from_micros(50));
        }
        let tr = net.tracer.take().unwrap();
        let events: Vec<_> = tr.events().collect();
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].cat, events[0].name.as_str()), ("fault", "drop"));
        assert_eq!((events[1].cat, events[1].name.as_str()), ("msg", "update"));
        assert!(events[1].dur.is_some(), "messages trace as spans");
        assert!(events[1].args.iter().any(|(k, v)| *k == "vclock" && v == "[1, 0, 0]"));
        assert_eq!(events[2].name, "timer_set");
        assert_eq!(metrics.rto_hist.count(), 1);
    }

    #[test]
    fn latency_model_components() {
        let mut rng = StdRng::seed_from_u64(1);
        let m =
            LatencyModel { base: SimTime::from_micros(5), per_byte_ns: 2, jitter: SimTime::ZERO };
        assert_eq!(m.sample(100, &mut rng), SimTime::from_nanos(5_200));
        assert_eq!(LatencyModel::INSTANT.sample(1000, &mut rng), SimTime::ZERO);
        let j =
            LatencyModel { base: SimTime::ZERO, per_byte_ns: 0, jitter: SimTime::from_nanos(10) };
        for _ in 0..100 {
            assert!(j.sample(0, &mut rng).as_nanos() <= 10);
        }
    }
}
