//! The simulated message-passing network: FIFO links, latency model,
//! delivery queue.
//!
//! Section 6 of the paper assumes "a message passing system with FIFO
//! communication channels". The network here delivers every message after
//! a configurable latency (`base + per_byte·size + jitter`), preserving
//! per-link FIFO order by default. FIFO can be switched off
//! ([`SimConfig::fifo`]) to inject the reordering faults the consistency
//! checkers are expected to catch.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use crate::metrics::Metrics;
use crate::time::SimTime;

/// Identifier of a network node (a memory replica or a manager).
///
/// Nodes are numbered densely from zero; the binding between processes and
/// nodes is up to the protocol (typically process `i` lives on node `i`
/// and managers occupy the tail ids).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Message latency model: `base + per_byte·size` plus uniform jitter in
/// `[0, jitter]`.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Fixed per-message cost.
    pub base: SimTime,
    /// Cost per payload byte, in nanoseconds.
    pub per_byte_ns: u64,
    /// Upper bound of the uniform jitter term.
    pub jitter: SimTime,
}

impl LatencyModel {
    /// A zero-latency model (useful for algorithmic tests).
    pub const INSTANT: LatencyModel = LatencyModel {
        base: SimTime::ZERO,
        per_byte_ns: 0,
        jitter: SimTime::ZERO,
    };

    /// Samples the latency of one message of `bytes` payload bytes.
    pub fn sample(&self, bytes: u64, rng: &mut StdRng) -> SimTime {
        let jitter = if self.jitter == SimTime::ZERO {
            0
        } else {
            rng.gen_range(0..=self.jitter.as_nanos())
        };
        self.base + SimTime::from_nanos(bytes * self.per_byte_ns + jitter)
    }
}

impl Default for LatencyModel {
    /// A LAN-like default: 5µs base, 2ns/byte, 1µs jitter.
    fn default() -> Self {
        LatencyModel {
            base: SimTime::from_micros(5),
            per_byte_ns: 2,
            jitter: SimTime::from_micros(1),
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for every random choice (latency jitter, tie-breaking).
    pub seed: u64,
    /// The message latency model.
    pub latency: LatencyModel,
    /// Virtual cost charged per process syscall.
    pub local_cost: SimTime,
    /// Preserve per-link FIFO delivery order (the paper's assumption)
    /// *and* per-link bandwidth serialization. Disabling injects
    /// reordering faults and also lifts the bandwidth limit — the
    /// fault-injection mode deliberately models a lawless network.
    pub fifo: bool,
    /// Abort the run after this many simulator events (runaway guard).
    pub max_events: u64,
}

impl SimConfig {
    /// A configuration with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig { seed, ..SimConfig::default() }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::default(),
            local_cost: SimTime::from_nanos(100),
            fifo: true,
            max_events: 100_000_000,
        }
    }
}

/// A scheduled message delivery.
#[derive(Debug)]
pub(crate) struct Delivery<M> {
    pub at: SimTime,
    pub seq: u64,
    pub from: NodeId,
    pub to: NodeId,
    pub msg: M,
}

impl<M> PartialEq for Delivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Delivery<M> {}

impl<M> PartialOrd for Delivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Delivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The network state owned by the kernel.
#[derive(Debug)]
pub(crate) struct Network<M> {
    pub queue: BinaryHeap<Reverse<Delivery<M>>>,
    pub link_last: HashMap<(NodeId, NodeId), SimTime>,
    pub next_seq: u64,
    pub nnodes: usize,
}

impl<M> Network<M> {
    pub fn new(nnodes: usize) -> Self {
        Network {
            queue: BinaryHeap::new(),
            link_last: HashMap::new(),
            next_seq: 0,
            nnodes,
        }
    }
}

/// The interface protocols use to interact with the network and clock.
///
/// Handed to every [`Protocol`](crate::Protocol) callback; sending is
/// asynchronous (fire-and-forget), matching the paper's non-blocking
/// update broadcasts.
#[derive(Debug)]
pub struct NetCtx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) net: &'a mut Network<M>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) config: &'a SimConfig,
}

impl<M> NetCtx<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of network nodes.
    pub fn nnodes(&self) -> usize {
        self.net.nnodes
    }

    /// The seeded random-number generator of the run.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` from `from` to `to`.
    ///
    /// `kind` labels the message in the metrics; `bytes` is the modeled
    /// payload size (it feeds the latency model and byte counters).
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or if `from == to`
    /// (local interactions are not messages).
    pub fn send(&mut self, from: NodeId, to: NodeId, kind: &'static str, bytes: u64, msg: M) {
        assert!(from.index() < self.net.nnodes, "send from unknown node {from}");
        assert!(to.index() < self.net.nnodes, "send to unknown node {to}");
        assert_ne!(from, to, "a node does not message itself");
        let latency = self.config.latency.sample(bytes, self.rng);
        let mut at = self.now + latency;
        if self.config.fifo {
            // Finite link bandwidth: a link is occupied for the message's
            // transmission time, so back-to-back sends on one link are
            // serialized (store-and-forward). This also preserves FIFO.
            let tx = SimTime::from_nanos(bytes * self.config.latency.per_byte_ns);
            let last = self.net.link_last.entry((from, to)).or_insert(SimTime::ZERO);
            if at < *last + tx {
                at = *last + tx;
            }
            *last = at;
        }
        let seq = self.net.next_seq;
        self.net.next_seq += 1;
        self.metrics.record_send(kind, bytes);
        self.net.queue.push(Reverse(Delivery { at, seq, from, to, msg }));
    }

    /// Broadcasts `msg` from `from` to every other node.
    pub fn broadcast(&mut self, from: NodeId, kind: &'static str, bytes: u64, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.net.nnodes as u32 {
            if to != from.0 {
                self.send(from, NodeId(to), kind, bytes, msg.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (Network<u32>, StdRng, Metrics, SimConfig) {
        (
            Network::new(3),
            StdRng::seed_from_u64(7),
            Metrics::new(),
            SimConfig::with_seed(7),
        )
    }

    #[test]
    fn send_schedules_delivery_after_latency() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx { now: SimTime::ZERO, net: &mut net, rng: &mut rng, metrics: &mut metrics, config: &config };
        ctx.send(NodeId(0), NodeId(1), "test", 8, 42);
        assert_eq!(metrics.messages, 1);
        let Reverse(d) = net.queue.pop().unwrap();
        assert!(d.at >= config.latency.base);
        assert_eq!(d.msg, 42);
        assert_eq!((d.from, d.to), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn fifo_preserves_link_order() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.latency.jitter = SimTime::from_millis(1); // huge jitter
        let mut ctx = NetCtx { now: SimTime::ZERO, net: &mut net, rng: &mut rng, metrics: &mut metrics, config: &config };
        for i in 0..50u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut order = Vec::new();
        while let Some(Reverse(d)) = net.queue.pop() {
            assert!((d.at, d.seq) >= last, "heap pops in time order");
            last = (d.at, d.seq);
            order.push(d.msg);
        }
        // FIFO: payloads in send order.
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn non_fifo_can_reorder() {
        let (mut net, mut rng, mut metrics, mut config) = ctx_parts();
        config.fifo = false;
        config.latency.jitter = SimTime::from_millis(1);
        let mut ctx = NetCtx { now: SimTime::ZERO, net: &mut net, rng: &mut rng, metrics: &mut metrics, config: &config };
        for i in 0..50u32 {
            ctx.send(NodeId(0), NodeId(1), "test", 0, i);
        }
        let mut order = Vec::new();
        while let Some(Reverse(d)) = net.queue.pop() {
            order.push(d.msg);
        }
        let expect: Vec<u32> = (0..50).collect();
        assert_ne!(order, expect, "with huge jitter some reordering occurs");
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx { now: SimTime::ZERO, net: &mut net, rng: &mut rng, metrics: &mut metrics, config: &config };
        ctx.broadcast(NodeId(1), "update", 4, 9);
        assert_eq!(metrics.messages, 2);
        let targets: Vec<NodeId> = net.queue.drain().map(|Reverse(d)| d.to).collect();
        assert!(targets.contains(&NodeId(0)) && targets.contains(&NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "does not message itself")]
    fn self_send_panics() {
        let (mut net, mut rng, mut metrics, config) = ctx_parts();
        let mut ctx = NetCtx { now: SimTime::ZERO, net: &mut net, rng: &mut rng, metrics: &mut metrics, config: &config };
        ctx.send(NodeId(0), NodeId(0), "test", 0, 0);
    }

    #[test]
    fn latency_model_components() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel { base: SimTime::from_micros(5), per_byte_ns: 2, jitter: SimTime::ZERO };
        assert_eq!(m.sample(100, &mut rng), SimTime::from_nanos(5_200));
        assert_eq!(LatencyModel::INSTANT.sample(1000, &mut rng), SimTime::ZERO);
        let j = LatencyModel { base: SimTime::ZERO, per_byte_ns: 0, jitter: SimTime::from_nanos(10) };
        for _ in 0..100 {
            assert!(j.sample(0, &mut rng).as_nanos() <= 10);
        }
    }
}
