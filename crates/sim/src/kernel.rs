//! The simulation kernel: deterministic scheduling of process syscalls and
//! message deliveries.
//!
//! Processes are ordinary Rust closures running on OS threads, but **at
//! most one process thread is ever runnable**: every interaction with the
//! memory system is a *syscall* that parks the thread on a rendezvous
//! channel until the kernel schedules it. The kernel interleaves syscalls
//! and message deliveries by minimum virtual time with seeded
//! tie-breaking, so a run is a pure function of `(program, SimConfig)` —
//! re-running with a different seed explores a different interleaving,
//! which the property-based tests exploit.

use std::cmp::Reverse;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::net::{Delivery, NetCtx, Network, NodeId, SimConfig};
use crate::schedule::{ActionId, RandomSchedule, Schedule, Touch};
use crate::time::SimTime;
use crate::trace::{TraceEvent, Tracer};

/// Identifier of a simulated process (the syscall-issuing entity).
///
/// Distinct from [`NodeId`]: a process is *bound* to a node (its local
/// replica), and some nodes (managers) host no process at all.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcToken(pub u32);

impl ProcToken {
    /// Returns the dense index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The result of submitting a syscall to a protocol.
#[derive(Debug)]
pub enum Poll<R> {
    /// The request completed; the process resumes with this response.
    Ready(R),
    /// The request blocks; the kernel will call
    /// [`Protocol::poll_blocked`] after subsequent events.
    Pending,
}

/// A distributed protocol running over the simulated network.
///
/// One `Protocol` value owns the state of *all* nodes (replicas and
/// managers); the kernel tells it which node an event concerns. This keeps
/// the trait object-free and lets protocols share lookup tables.
pub trait Protocol: 'static {
    /// Network message payload.
    type Msg: Send + 'static;
    /// Syscall request issued by processes.
    type Req: Send + 'static;
    /// Syscall response returned to processes.
    type Resp: Send + 'static;

    /// Handles a syscall from `proc` (bound to `node`). Returning
    /// [`Poll::Pending`] parks the process; the protocol must remember
    /// enough state to answer a later [`Protocol::poll_blocked`].
    fn on_request(
        &mut self,
        proc: ProcToken,
        node: NodeId,
        req: Self::Req,
        net: &mut NetCtx<'_, Self::Msg>,
    ) -> Poll<Self::Resp>;

    /// Handles a message delivery at `to`.
    fn on_message(
        &mut self,
        to: NodeId,
        from: NodeId,
        msg: Self::Msg,
        net: &mut NetCtx<'_, Self::Msg>,
    );

    /// Re-examines a parked process after an event. Returning `Some`
    /// resumes it.
    fn poll_blocked(
        &mut self,
        proc: ProcToken,
        node: NodeId,
        net: &mut NetCtx<'_, Self::Msg>,
    ) -> Option<Self::Resp>;

    /// Handles the expiration of a timer armed with
    /// [`NetCtx::set_timer`] at `node` with `token`. The default does
    /// nothing — only protocols that arm timers need to override it.
    fn on_timer(&mut self, node: NodeId, token: u64, net: &mut NetCtx<'_, Self::Msg>) {
        let _ = (node, token, net);
    }

    /// Handles a crash-recover of `node`: its volatile state is gone and
    /// it must rebuild from durable storage (dropping anything staged but
    /// never fsynced), then re-earn whatever it lost from its peers. The
    /// kernel has already wiped the node's in-flight deliveries and
    /// timers. Protocols with durable storage override this and account
    /// for lost/replayed records via the [`NetCtx`] WAL recorders; the
    /// default does nothing (a crash-recover of a stateless node).
    fn on_crash_recover(&mut self, node: NodeId, net: &mut NetCtx<'_, Self::Msg>) {
        let _ = (node, net);
    }

    /// The number of WAL records currently appended but not yet fsynced
    /// across all replicas, sampled at the end of a run for the WAL
    /// conservation law. Protocols without durable storage report zero.
    fn durable_staged(&self) -> u64 {
        0
    }
}

enum ProcEvent<Req> {
    Request(Req),
    Charge(SimTime),
    Done(Option<Box<dyn std::any::Any + Send>>),
}

enum KernelReply<Resp> {
    Resp(Resp),
    Ack,
}

/// The process-side handle for issuing syscalls.
///
/// Handed to each process closure by [`Kernel::spawn`].
#[derive(Debug)]
pub struct ProcCtx<P: Protocol> {
    token: ProcToken,
    tx: Sender<(u32, ProcEvent<P::Req>)>,
    rx: Receiver<KernelReply<P::Resp>>,
}

impl<P: Protocol> ProcCtx<P> {
    /// This process's token.
    pub fn token(&self) -> ProcToken {
        self.token
    }

    /// Issues a syscall and blocks until the kernel responds.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has shut down (deadlock detected elsewhere).
    pub fn request(&mut self, req: P::Req) -> P::Resp {
        self.tx.send((self.token.0, ProcEvent::Request(req))).expect("kernel alive");
        match self.rx.recv().expect("kernel alive") {
            KernelReply::Resp(r) => r,
            KernelReply::Ack => unreachable!("request answered with ack"),
        }
    }

    /// Charges `cost` of virtual compute time to this process.
    ///
    /// Use to model local computation between memory operations.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has shut down.
    pub fn advance(&mut self, cost: SimTime) {
        self.tx.send((self.token.0, ProcEvent::Charge(cost))).expect("kernel alive");
        match self.rx.recv().expect("kernel alive") {
            KernelReply::Ack => {}
            KernelReply::Resp(_) => unreachable!("charge answered with response"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcState {
    Running,
    Ready,
    Blocked,
    Done,
}

struct ProcSlot<P: Protocol> {
    node: NodeId,
    state: ProcState,
    resp_tx: Sender<KernelReply<P::Resp>>,
    handle: Option<JoinHandle<()>>,
    clock: SimTime,
    ready_at: SimTime,
    pending: Option<P::Req>,
    blocked_since: SimTime,
}

/// Why a simulation run failed.
#[derive(Debug)]
pub enum SimError {
    /// All runnable work was exhausted while processes remained blocked.
    Deadlock {
        /// The blocked processes.
        blocked: Vec<ProcToken>,
        /// Virtual time of the deadlock.
        at: SimTime,
    },
    /// A process panicked; the payload is re-thrown by [`Kernel::run`]'s
    /// caller via [`std::panic::resume_unwind`] if desired.
    ProcPanicked {
        /// The process that panicked.
        proc: ProcToken,
        /// The panic payload.
        payload: Box<dyn std::any::Any + Send>,
    },
    /// The configured event budget was exhausted.
    EventLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, at } => {
                write!(f, "deadlock at {at}: blocked processes {blocked:?}")
            }
            SimError::ProcPanicked { proc, .. } => write!(f, "process {proc} panicked"),
            SimError::EventLimit { limit } => {
                write!(f, "event limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of a completed run.
#[derive(Debug)]
pub struct RunReport<P> {
    /// The final protocol state (for inspection and invariant checks).
    pub protocol: P,
    /// Execution metrics.
    pub metrics: Metrics,
    /// The structured event trace, when the run had tracing enabled (see
    /// [`Kernel::enable_tracing`]).
    pub trace: Option<Tracer>,
}

/// The simulation kernel. See the module docs for the scheduling model.
///
/// # Examples
///
/// ```
/// use mc_sim::{Kernel, NetCtx, NodeId, Poll, ProcToken, Protocol, SimConfig};
///
/// // A trivial "protocol": requests echo their payload locally.
/// struct Echo;
/// impl Protocol for Echo {
///     type Msg = ();
///     type Req = u32;
///     type Resp = u32;
///     fn on_request(&mut self, _: ProcToken, _: NodeId, req: u32,
///                   _: &mut NetCtx<'_, ()>) -> Poll<u32> {
///         Poll::Ready(req + 1)
///     }
///     fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut NetCtx<'_, ()>) {}
///     fn poll_blocked(&mut self, _: ProcToken, _: NodeId,
///                     _: &mut NetCtx<'_, ()>) -> Option<u32> { None }
/// }
///
/// let mut kernel = Kernel::new(Echo, 1, SimConfig::default());
/// kernel.spawn(NodeId(0), |ctx| {
///     assert_eq!(ctx.request(41), 42);
/// });
/// let report = kernel.run()?;
/// assert_eq!(report.metrics.events, 1);
/// # Ok::<(), mc_sim::SimError>(())
/// ```
pub struct Kernel<P: Protocol> {
    protocol: P,
    config: SimConfig,
    network: Network<P::Msg>,
    rng: StdRng,
    schedule: Box<dyn Schedule>,
    metrics: Metrics,
    procs: Vec<ProcSlot<P>>,
    inbox_tx: Sender<(u32, ProcEvent<P::Req>)>,
    inbox_rx: Receiver<(u32, ProcEvent<P::Req>)>,
    now: SimTime,
    /// Scheduled crash-recovers from the fault plan, sorted by time;
    /// `next_plan_recover` indexes the first not yet executed.
    plan_recovers: Vec<(SimTime, NodeId)>,
    next_plan_recover: usize,
}

impl<P: Protocol> fmt::Debug for Kernel<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("nnodes", &self.network.nnodes)
            .field("nprocs", &self.procs.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<P: Protocol> Kernel<P> {
    /// Creates a kernel over `nnodes` network nodes.
    pub fn new(protocol: P, nnodes: usize, config: SimConfig) -> Self {
        let (inbox_tx, inbox_rx) = channel();
        let mut plan_recovers: Vec<(SimTime, NodeId)> =
            config.faults.crash_recovers.iter().map(|&(n, t)| (t, n)).collect();
        plan_recovers.sort();
        Kernel {
            protocol,
            rng: StdRng::seed_from_u64(config.seed),
            schedule: Box::new(RandomSchedule::new(config.seed ^ 0x5eed_0fda)),
            config,
            network: Network::new(nnodes),
            metrics: Metrics::new(),
            procs: Vec::new(),
            inbox_tx,
            inbox_rx,
            now: SimTime::ZERO,
            plan_recovers,
            next_plan_recover: 0,
        }
    }

    /// Spawns a process bound to `node` and returns its token.
    ///
    /// The closure runs on its own thread but is scheduled cooperatively:
    /// it only makes progress when the kernel resumes one of its syscalls.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn<F>(&mut self, node: NodeId, f: F) -> ProcToken
    where
        F: FnOnce(&mut ProcCtx<P>) + Send + 'static,
    {
        assert!(node.index() < self.network.nnodes, "unknown node {node}");
        let token = ProcToken(self.procs.len() as u32);
        let (resp_tx, resp_rx) = channel();
        let tx = self.inbox_tx.clone();
        let mut ctx = ProcCtx { token, tx: tx.clone(), rx: resp_rx };
        let handle = std::thread::Builder::new()
            .name(format!("sim-proc-{}", token.0))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(move || f(&mut ctx)));
                let payload = result.err();
                // The kernel may already be gone (deadlock shutdown).
                let _ = tx.send((token.0, ProcEvent::Done(payload)));
            })
            .expect("thread spawn");
        self.procs.push(ProcSlot {
            node,
            state: ProcState::Running,
            resp_tx,
            handle: Some(handle),
            clock: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            pending: None,
            blocked_since: SimTime::ZERO,
        });
        token
    }

    /// The kernel's metrics so far (useful between phased runs).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Enables structured tracing for this run.
    ///
    /// Every message, syscall, stall, timer, and injected fault is then
    /// recorded as a [`TraceEvent`] keyed by virtual time; the collected
    /// [`Tracer`] comes back in [`RunReport::trace`]. Off by default —
    /// when disabled the instrumentation sites cost one `Option` check
    /// each, so untraced runs pay nothing measurable.
    pub fn enable_tracing(&mut self) {
        self.network.tracer = Some(Tracer::new());
    }

    /// Replaces the tie-breaking schedule (see [`crate::schedule`]).
    ///
    /// With [`LatencyModel::INSTANT`](crate::LatencyModel::INSTANT) (or any
    /// jitter-free model) the schedule is the *only* source of
    /// nondeterminism, so enumerating decision traces enumerates the
    /// run's interleavings.
    pub fn set_schedule(&mut self, schedule: Box<dyn Schedule>) {
        self.schedule = schedule;
    }

    fn net_ctx<'a>(
        now: SimTime,
        network: &'a mut Network<P::Msg>,
        rng: &'a mut StdRng,
        metrics: &'a mut Metrics,
        config: &'a SimConfig,
        sched: Option<&'a mut dyn Schedule>,
    ) -> NetCtx<'a, P::Msg> {
        NetCtx { now, net: network, rng, metrics, config, sched }
    }

    /// Blocks until no process thread is running (all are parked on a
    /// syscall, blocked, or done).
    fn settle(&mut self) -> Result<(), SimError> {
        while self.procs.iter().any(|p| p.state == ProcState::Running) {
            let (idx, ev) = self.inbox_rx.recv().expect("a running process exists");
            let slot = &mut self.procs[idx as usize];
            match ev {
                ProcEvent::Request(req) => {
                    slot.pending = Some(req);
                    slot.ready_at = slot.clock + self.config.local_cost;
                    slot.state = ProcState::Ready;
                    self.metrics.record_proc_syscall(idx as usize);
                }
                ProcEvent::Charge(cost) => {
                    slot.clock += cost;
                    slot.resp_tx.send(KernelReply::Ack).expect("process waiting for ack");
                }
                ProcEvent::Done(payload) => {
                    slot.state = ProcState::Done;
                    if let Some(payload) = payload {
                        return Err(SimError::ProcPanicked { proc: ProcToken(idx), payload });
                    }
                }
            }
        }
        Ok(())
    }

    /// Resumes process `idx` with `reply` and waits for it to settle.
    fn resume(&mut self, idx: usize, reply: P::Resp) -> Result<(), SimError> {
        let slot = &mut self.procs[idx];
        slot.state = ProcState::Running;
        slot.clock = self.now;
        slot.resp_tx.send(KernelReply::Resp(reply)).expect("process waiting for response");
        self.settle()
    }

    /// Polls every blocked process (in token order) until a fixpoint.
    fn poll_blocked_procs(&mut self) -> Result<(), SimError> {
        loop {
            let mut progressed = false;
            for idx in 0..self.procs.len() {
                if self.procs[idx].state != ProcState::Blocked {
                    continue;
                }
                let node = self.procs[idx].node;
                let mut ctx = Self::net_ctx(
                    self.now,
                    &mut self.network,
                    &mut self.rng,
                    &mut self.metrics,
                    &self.config,
                    Some(&mut *self.schedule),
                );
                if let Some(resp) =
                    self.protocol.poll_blocked(ProcToken(idx as u32), node, &mut ctx)
                {
                    let stall = self.now.saturating_sub(self.procs[idx].blocked_since);
                    self.metrics.record_stall(stall);
                    self.metrics.record_proc_stall(idx, stall);
                    if let Some(tr) = self.network.tracer.as_mut() {
                        tr.record(TraceEvent {
                            t: self.procs[idx].blocked_since,
                            dur: Some(stall),
                            cat: "stall",
                            name: "blocked".to_string(),
                            track: node.0,
                            args: vec![("proc", idx.to_string())],
                        });
                    }
                    // The resumed process reads node-local state: its
                    // node's state joins the current step's footprint.
                    self.network.touched.push(Touch::State(node));
                    self.resume(idx, resp)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] if blocked processes can never resume;
    /// * [`SimError::ProcPanicked`] if a process panicked;
    /// * [`SimError::EventLimit`] if the event budget is exhausted.
    pub fn run(mut self) -> Result<RunReport<P>, SimError> {
        let outcome = self.run_inner();
        // Shut down: drop response senders so stray threads unblock, then
        // join them (ignoring their shutdown panics).
        let handles: Vec<JoinHandle<()>> =
            self.procs.iter_mut().filter_map(|p| p.handle.take()).collect();
        let senders: Vec<Sender<KernelReply<P::Resp>>> =
            self.procs.drain(..).map(|p| p.resp_tx).collect();
        drop(senders);
        for h in handles {
            let _ = h.join();
        }
        match outcome {
            Ok(()) => {
                self.metrics.finish_time = self.now;
                // On normal completion nothing is left in flight (queued
                // deliveries and armed timers are always runnable events),
                // so the conservation laws must balance exactly.
                self.metrics.timers_pending = self.network.timers.len() as u64;
                self.metrics.wal_staged = self.protocol.durable_staged();
                let queued = self.network.queue.len() as u64;
                if let Err(e) = self.metrics.check_conservation(queued) {
                    panic!("metrics accounting bug: {e}");
                }
                Ok(RunReport {
                    protocol: self.protocol,
                    metrics: self.metrics,
                    trace: self.network.tracer.take(),
                })
            }
            Err(e) => Err(e),
        }
    }

    fn run_inner(&mut self) -> Result<(), SimError> {
        self.settle()?;
        self.poll_blocked_procs()?;
        loop {
            if self.metrics.events >= self.config.max_events {
                return Err(SimError::EventLimit { limit: self.config.max_events });
            }
            // Candidates: the earliest delivery, the earliest timer, and
            // every ready syscall.
            let delivery_at = self.network.queue.peek().map(|Reverse(d)| d.at);
            let timer_at = self.network.timers.peek().map(|Reverse(t)| t.at);
            let plan_recover_at = self.plan_recovers.get(self.next_plan_recover).map(|&(t, _)| t);
            let ready: Vec<(usize, SimTime)> = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.state == ProcState::Ready)
                .map(|(i, p)| (i, p.ready_at))
                .collect();

            let min_time = ready
                .iter()
                .map(|&(_, t)| t)
                .chain(delivery_at)
                .chain(timer_at)
                .chain(plan_recover_at)
                .min();
            let Some(min_time) = min_time else {
                // Nothing runnable.
                let blocked: Vec<ProcToken> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.state == ProcState::Blocked)
                    .map(|(i, _)| ProcToken(i as u32))
                    .collect();
                if blocked.is_empty() {
                    return Ok(()); // all done
                }
                return Err(SimError::Deadlock { blocked, at: self.now });
            };
            self.now = self.now.max(min_time);

            // Collect all candidates at min_time; delegate the tie-break
            // to the schedule, describing each candidate so recording
            // schedules can reason about what the choices *were*. Under
            // fault exploration, every not-yet-crashed budgeted node may
            // also crash instead — enumerating crash timing.
            #[derive(Clone, Copy)]
            enum Cand {
                Deliver,
                Timer,
                Syscall(usize),
                Crash(NodeId),
                /// `plan` distinguishes a fault-plan scheduled recover
                /// (advances `next_plan_recover`) from an explored budget
                /// recover (spends the node's once-per-run allowance).
                CrashRecover {
                    node: NodeId,
                    plan: bool,
                },
            }
            let mut candidates: Vec<Cand> = Vec::new();
            let mut ids: Vec<ActionId> = Vec::new();
            for &(i, t) in &ready {
                if t == min_time {
                    candidates.push(Cand::Syscall(i));
                    ids.push(ActionId::Syscall { proc: i as u32 });
                }
            }
            if delivery_at == Some(min_time) {
                let d = &self.network.queue.peek().expect("nonempty").0;
                candidates.push(Cand::Deliver);
                ids.push(ActionId::Deliver { from: d.from, to: d.to, seq: d.seq });
            }
            if timer_at == Some(min_time) {
                let t = &self.network.timers.peek().expect("nonempty").0;
                candidates.push(Cand::Timer);
                ids.push(ActionId::Timer { node: t.node, seq: t.seq });
            }
            if plan_recover_at == Some(min_time) {
                let (_, node) = self.plan_recovers[self.next_plan_recover];
                candidates.push(Cand::CrashRecover { node, plan: true });
                ids.push(ActionId::CrashRecover { node });
            }
            if let Some(budget) = &self.config.explore_faults {
                for &node in &budget.crashes {
                    if !self.network.is_downed(node) {
                        candidates.push(Cand::Crash(node));
                        ids.push(ActionId::Crash { node });
                    }
                }
                for &node in &budget.recovers {
                    if !self.network.is_downed(node) && !self.network.recovers_used.contains(&node)
                    {
                        candidates.push(Cand::CrashRecover { node, plan: false });
                        ids.push(ActionId::CrashRecover { node });
                    }
                }
            }
            let choice = candidates[self.schedule.choose_action(&ids)];

            self.metrics.events += 1;
            // Each step's conflict footprint starts from its primary node
            // and accumulates send destinations, timer targets, and
            // resumed processes as the step executes.
            self.network.touched.clear();
            match choice {
                Cand::Deliver => {
                    let Reverse(d) = self.network.queue.pop().expect("peeked");
                    let Delivery { from, to, sent, msg, .. } = d;
                    self.metrics.record_delivery(self.now.saturating_sub(sent));
                    // Delivery dequeues at `to` *and* mutates its replica.
                    self.network.touched.push(Touch::Queue(to));
                    self.network.touched.push(Touch::State(to));
                    let mut ctx = Self::net_ctx(
                        self.now,
                        &mut self.network,
                        &mut self.rng,
                        &mut self.metrics,
                        &self.config,
                        Some(&mut *self.schedule),
                    );
                    self.protocol.on_message(to, from, msg, &mut ctx);
                }
                Cand::Timer => {
                    let Reverse(t) = self.network.timers.pop().expect("peeked");
                    self.metrics.timers_fired += 1;
                    if let Some(tr) = self.network.tracer.as_mut() {
                        tr.record(TraceEvent {
                            t: self.now,
                            dur: None,
                            cat: "timer",
                            name: "timer_fired".to_string(),
                            track: t.node.0,
                            args: vec![("token", t.token.to_string())],
                        });
                    }
                    self.network.touched.push(Touch::Queue(t.node));
                    self.network.touched.push(Touch::State(t.node));
                    let mut ctx = Self::net_ctx(
                        self.now,
                        &mut self.network,
                        &mut self.rng,
                        &mut self.metrics,
                        &self.config,
                        Some(&mut *self.schedule),
                    );
                    self.protocol.on_timer(t.node, t.token, &mut ctx);
                }
                Cand::Syscall(idx) => {
                    let req = self.procs[idx].pending.take().expect("ready has request");
                    let (token, node) = (ProcToken(idx as u32), self.procs[idx].node);
                    if let Some(tr) = self.network.tracer.as_mut() {
                        // Span from the syscall's issue (before the charged
                        // local cost) to the moment it is serviced.
                        let issued =
                            self.procs[idx].ready_at.saturating_sub(self.config.local_cost);
                        tr.record(TraceEvent {
                            t: issued,
                            dur: Some(self.now.saturating_sub(issued)),
                            cat: "syscall",
                            name: "syscall".to_string(),
                            track: node.0,
                            args: vec![("proc", idx.to_string())],
                        });
                    }
                    // A syscall reads and writes its own node's replica;
                    // any sends it issues add queue touches elsewhere.
                    self.network.touched.push(Touch::State(node));
                    let mut ctx = Self::net_ctx(
                        self.now,
                        &mut self.network,
                        &mut self.rng,
                        &mut self.metrics,
                        &self.config,
                        Some(&mut *self.schedule),
                    );
                    match self.protocol.on_request(token, node, req, &mut ctx) {
                        Poll::Ready(resp) => {
                            self.resume(idx, resp)?;
                        }
                        Poll::Pending => {
                            self.procs[idx].state = ProcState::Blocked;
                            self.procs[idx].blocked_since = self.now;
                        }
                    }
                }
                Cand::Crash(node) => {
                    // A crash silences the node and purges its queue. The
                    // wiped in-flight deliveries and cancelled timers join
                    // the fault/timer accounting so conservation holds.
                    self.network.touched.push(Touch::State(node));
                    self.network.touched.push(Touch::Queue(node));
                    let (wiped, cancelled) = self.network.crash_node(node);
                    self.metrics.faults.crash_dropped += wiped;
                    self.metrics.timers_cancelled += cancelled;
                    if let Some(tr) = self.network.tracer.as_mut() {
                        tr.record(TraceEvent {
                            t: self.now,
                            dur: None,
                            cat: "fault",
                            name: "crash".to_string(),
                            track: node.0,
                            args: vec![
                                ("wiped_deliveries", wiped.to_string()),
                                ("cancelled_timers", cancelled.to_string()),
                            ],
                        });
                    }
                }
                Cand::CrashRecover { node, plan } => {
                    // A crash-recover is a crash (wiping the node's
                    // in-flight deliveries, timers, and volatile protocol
                    // state) immediately followed by a rebirth from
                    // durable storage: the protocol replays its WAL and
                    // snapshot in `on_crash_recover` and re-fetches the
                    // rest from peers.
                    self.network.touched.push(Touch::State(node));
                    self.network.touched.push(Touch::Queue(node));
                    let (wiped, cancelled) = self.network.crash_node(node);
                    self.network.revive(node);
                    if plan {
                        self.next_plan_recover += 1;
                    } else {
                        self.network.recovers_used.push(node);
                    }
                    self.metrics.faults.crash_dropped += wiped;
                    self.metrics.timers_cancelled += cancelled;
                    self.metrics.wal.recoveries += 1;
                    if let Some(tr) = self.network.tracer.as_mut() {
                        tr.record(TraceEvent {
                            t: self.now,
                            dur: None,
                            cat: "fault",
                            name: "crash_recover".to_string(),
                            track: node.0,
                            args: vec![
                                ("wiped_deliveries", wiped.to_string()),
                                ("cancelled_timers", cancelled.to_string()),
                            ],
                        });
                    }
                    let mut ctx = Self::net_ctx(
                        self.now,
                        &mut self.network,
                        &mut self.rng,
                        &mut self.metrics,
                        &self.config,
                        Some(&mut *self.schedule),
                    );
                    self.protocol.on_crash_recover(node, &mut ctx);
                }
            }
            self.poll_blocked_procs()?;
            self.schedule.record_footprint(&self.network.touched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A tiny replicated-counter protocol for exercising the kernel:
    /// `Incr` bumps the local copy and broadcasts; `Get` reads the local
    /// copy; `WaitFor(v)` blocks until the local copy reaches `v`.
    #[derive(Debug)]
    struct Counter {
        copies: Vec<i64>,
        waiting: Vec<Option<i64>>, // per proc: threshold
    }

    #[derive(Clone)]
    struct Bump(i64);

    enum Req {
        Incr,
        Get,
        WaitFor(i64),
    }

    impl Protocol for Counter {
        type Msg = Bump;
        type Req = Req;
        type Resp = i64;

        fn on_request(
            &mut self,
            proc: ProcToken,
            node: NodeId,
            req: Req,
            net: &mut NetCtx<'_, Bump>,
        ) -> Poll<i64> {
            match req {
                Req::Incr => {
                    self.copies[node.index()] += 1;
                    net.broadcast(node, "bump", 8, Bump(1));
                    Poll::Ready(self.copies[node.index()])
                }
                Req::Get => Poll::Ready(self.copies[node.index()]),
                Req::WaitFor(v) => {
                    if self.copies[node.index()] >= v {
                        Poll::Ready(self.copies[node.index()])
                    } else {
                        self.waiting[proc.index()] = Some(v);
                        Poll::Pending
                    }
                }
            }
        }

        fn on_message(
            &mut self,
            to: NodeId,
            _from: NodeId,
            msg: Bump,
            _net: &mut NetCtx<'_, Bump>,
        ) {
            self.copies[to.index()] += msg.0;
        }

        fn poll_blocked(
            &mut self,
            proc: ProcToken,
            node: NodeId,
            _net: &mut NetCtx<'_, Bump>,
        ) -> Option<i64> {
            let v = self.waiting[proc.index()]?;
            if self.copies[node.index()] >= v {
                self.waiting[proc.index()] = None;
                Some(self.copies[node.index()])
            } else {
                None
            }
        }
    }

    fn counter(n: usize) -> Counter {
        Counter { copies: vec![0; n], waiting: vec![None; 8] }
    }

    #[test]
    fn basic_request_response() {
        let mut k = Kernel::new(counter(2), 2, SimConfig::default());
        let out = Arc::new(Mutex::new(0));
        let out2 = out.clone();
        k.spawn(NodeId(0), move |ctx| {
            ctx.request(Req::Incr);
            *out2.lock().unwrap() = ctx.request(Req::Get);
        });
        let report = k.run().unwrap();
        assert_eq!(*out.lock().unwrap(), 1);
        assert_eq!(report.metrics.kind("bump").count, 1);
        assert!(report.metrics.finish_time > SimTime::ZERO);
    }

    #[test]
    fn blocking_resumes_on_delivery() {
        let mut k = Kernel::new(counter(2), 2, SimConfig::default());
        let got = Arc::new(Mutex::new(0));
        let got2 = got.clone();
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Incr);
        });
        k.spawn(NodeId(1), move |ctx| {
            *got2.lock().unwrap() = ctx.request(Req::WaitFor(1));
        });
        let report = k.run().unwrap();
        assert_eq!(*got.lock().unwrap(), 1);
        assert_eq!(report.metrics.blocked_syscalls, 1);
        assert!(report.metrics.stall_time > SimTime::ZERO);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut k = Kernel::new(counter(1), 1, SimConfig::default());
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::WaitFor(1)); // nobody will increment
        });
        match k.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked, vec![ProcToken(0)]);
            }
            other => panic!("expected deadlock, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut k = Kernel::new(counter(1), 1, SimConfig::default());
        k.spawn(NodeId(0), |_ctx| {
            panic!("boom");
        });
        match k.run() {
            Err(SimError::ProcPanicked { proc, payload }) => {
                assert_eq!(proc, ProcToken(0));
                assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
            }
            other => panic!("expected panic report, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn event_limit_guards_runaway() {
        let cfg = SimConfig { max_events: 10, ..SimConfig::default() };
        let mut k = Kernel::new(counter(2), 2, cfg);
        k.spawn(NodeId(0), |ctx| {
            for _ in 0..100 {
                ctx.request(Req::Incr);
            }
        });
        assert!(matches!(k.run(), Err(SimError::EventLimit { limit: 10 })));
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed: u64| {
            let mut k = Kernel::new(counter(3), 3, SimConfig::with_seed(seed));
            for n in 0..3u32 {
                k.spawn(NodeId(n), move |ctx| {
                    for _ in 0..5 {
                        ctx.request(Req::Incr);
                    }
                    ctx.request(Req::WaitFor(15));
                });
            }
            let r = k.run().unwrap();
            (r.metrics.finish_time, r.metrics.messages, r.metrics.events)
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(7), run(7));
        // Different seeds explore different schedules (latency jitter).
        assert_ne!(run(1).0, run(2).0);
    }

    #[test]
    fn advance_charges_virtual_time() {
        let mut k = Kernel::new(counter(1), 1, SimConfig::default());
        k.spawn(NodeId(0), |ctx| {
            ctx.advance(SimTime::from_millis(5));
            ctx.request(Req::Get);
        });
        let report = k.run().unwrap();
        assert!(report.metrics.finish_time >= SimTime::from_millis(5));
    }

    #[test]
    fn eventual_delivery_converges_all_copies() {
        let n = 4;
        let mut k = Kernel::new(counter(n), n, SimConfig::with_seed(3));
        for i in 0..n as u32 {
            k.spawn(NodeId(i), move |ctx| {
                for _ in 0..3 {
                    ctx.request(Req::Incr);
                }
                ctx.request(Req::WaitFor(3 * 4));
            });
        }
        let report = k.run().unwrap();
        assert!(report.protocol.copies.iter().all(|&c| c == 12));
    }

    #[test]
    fn timers_fire_in_order_and_drive_the_protocol() {
        struct TimerProto {
            fired: Vec<u64>,
        }
        impl Protocol for TimerProto {
            type Msg = ();
            type Req = ();
            type Resp = Vec<u64>;
            fn on_request(
                &mut self,
                _proc: ProcToken,
                node: NodeId,
                _req: (),
                net: &mut NetCtx<'_, ()>,
            ) -> Poll<Vec<u64>> {
                net.set_timer(node, SimTime::from_micros(30), 3);
                net.set_timer(node, SimTime::from_micros(10), 1);
                net.set_timer(node, SimTime::from_micros(20), 2);
                Poll::Pending
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut NetCtx<'_, ()>) {}
            fn poll_blocked(
                &mut self,
                _proc: ProcToken,
                _node: NodeId,
                _net: &mut NetCtx<'_, ()>,
            ) -> Option<Vec<u64>> {
                (self.fired.len() == 3).then(|| self.fired.clone())
            }
            fn on_timer(&mut self, _node: NodeId, token: u64, _net: &mut NetCtx<'_, ()>) {
                self.fired.push(token);
            }
        }
        let mut k = Kernel::new(TimerProto { fired: Vec::new() }, 1, SimConfig::default());
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        k.spawn(NodeId(0), move |ctx| {
            *got2.lock().unwrap() = ctx.request(());
        });
        let report = k.run().unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3], "expirations in time order");
        assert_eq!(report.metrics.timers_set, 3);
        assert_eq!(report.metrics.timers_fired, 3);
        assert!(report.metrics.finish_time >= SimTime::from_micros(30));
    }

    #[test]
    fn explored_crash_candidate_silences_a_node() {
        use crate::net::FaultBudget;
        let cfg = SimConfig {
            explore_faults: Some(FaultBudget::new().crash_of(NodeId(1))),
            ..Default::default()
        };
        let mut k = Kernel::new(counter(2), 2, cfg);
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Incr);
            ctx.request(Req::Get);
        });
        // Crash actions are appended last, so always picking the final
        // candidate crashes n1 at the first opportunity.
        struct PickLast;
        impl Schedule for PickLast {
            fn choose(&mut self, n: usize) -> usize {
                n - 1
            }
        }
        k.set_schedule(Box::new(PickLast));
        let report = k.run().unwrap();
        assert_eq!(report.protocol.copies[0], 1);
        assert_eq!(report.protocol.copies[1], 0, "n1 crashed before the bump arrived");
    }

    #[test]
    fn replay_schedule_records_action_identities_and_footprints() {
        use crate::schedule::{ReplaySchedule, StepKind};
        let mut k = Kernel::new(counter(2), 2, SimConfig::default());
        let (sched, trace) = ReplaySchedule::new(Vec::new());
        k.set_schedule(Box::new(sched));
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Incr);
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.request(Req::WaitFor(1));
        });
        k.run().unwrap();
        let t = trace.lock().unwrap();
        assert!(!t.steps.is_empty());
        assert_eq!(t.steps.len(), t.choices.len());
        for (i, s) in t.steps.iter().enumerate() {
            match &s.kind {
                StepKind::Sched { candidates } => {
                    assert_eq!(candidates.len() as u32, t.arities[i]);
                    assert!(!s.footprint.is_empty(), "every step touches its primary node");
                }
                StepKind::Fault { .. } => panic!("no fault budget configured"),
            }
        }
        // The Incr broadcast makes its send destination's queue part of
        // the syscall step's footprint, next to the issuing node's state.
        let incr = t
            .steps
            .iter()
            .find(|s| {
                matches!(&s.kind, StepKind::Sched { candidates }
                    if candidates.contains(&ActionId::Syscall { proc: 0 }))
            })
            .expect("a step offering P0's syscall");
        assert!(incr.footprint.contains(&Touch::State(NodeId(0))));
        assert!(incr.footprint.contains(&Touch::Queue(NodeId(1))));
    }

    #[test]
    fn message_and_timer_conservation_under_seeded_fault_plans() {
        use crate::net::FaultPlan;
        let plans: Vec<FaultPlan> = vec![
            FaultPlan::new(),
            FaultPlan::new().drop_rate(0.3),
            FaultPlan::new().duplicate_rate(0.4),
            FaultPlan::new().drop_rate(0.2).duplicate_rate(0.2).reorder(SimTime::from_micros(50)),
            FaultPlan::new().partition(
                vec![NodeId(0)],
                vec![NodeId(1)],
                SimTime::ZERO,
                SimTime::from_micros(40),
            ),
            FaultPlan::new().duplicate_rate(0.3).crash(
                NodeId(1),
                SimTime::from_micros(10),
                Some(SimTime::from_micros(30)),
            ),
            FaultPlan::new().drop_rate(0.5).crash(NodeId(2), SimTime::from_micros(5), None),
        ];
        for (p, plan) in plans.iter().enumerate() {
            for seed in [1u64, 7, 23] {
                let mut cfg = SimConfig::with_seed(seed);
                cfg.faults = plan.clone();
                let mut k = Kernel::new(counter(3), 3, cfg);
                for n in 0..3u32 {
                    k.spawn(NodeId(n), move |ctx| {
                        for _ in 0..10 {
                            ctx.request(Req::Incr);
                        }
                    });
                }
                // `run` itself asserts conservation; re-check explicitly
                // so a violation names the offending plan and seed.
                let m = k.run().unwrap_or_else(|e| panic!("plan {p} seed {seed}: {e}")).metrics;
                m.check_conservation(0).unwrap_or_else(|e| panic!("plan {p} seed {seed}: {e}"));
                assert_eq!(
                    m.messages + m.faults.duplicated,
                    m.delivered + m.faults.dropped_total(),
                    "plan {p} seed {seed}"
                );
                assert_eq!(m.delivered, m.delivery_hist.count(), "plan {p} seed {seed}");
            }
        }
    }

    #[test]
    fn explored_crash_cancels_timers_and_keeps_conservation() {
        use crate::net::FaultBudget;

        /// Arms one far-future timer on node 1, then returns.
        struct Arm;
        impl Protocol for Arm {
            type Msg = ();
            type Req = ();
            type Resp = ();
            fn on_request(
                &mut self,
                _proc: ProcToken,
                _node: NodeId,
                _req: (),
                net: &mut NetCtx<'_, ()>,
            ) -> Poll<()> {
                net.set_timer(NodeId(1), SimTime::from_millis(10), 7);
                Poll::Ready(())
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut NetCtx<'_, ()>) {}
            fn poll_blocked(
                &mut self,
                _: ProcToken,
                _: NodeId,
                _: &mut NetCtx<'_, ()>,
            ) -> Option<()> {
                None
            }
        }

        let cfg = SimConfig {
            explore_faults: Some(FaultBudget::new().crash_of(NodeId(1))),
            ..Default::default()
        };
        let mut k = Kernel::new(Arm, 2, cfg);
        k.spawn(NodeId(0), |ctx| ctx.request(()));
        // Serve the syscall first (arming the timer), then crash n1
        // (cancelling it) — crash candidates are appended last.
        struct Seq(usize);
        impl Schedule for Seq {
            fn choose(&mut self, n: usize) -> usize {
                self.0 += 1;
                if self.0 == 1 {
                    0
                } else {
                    n - 1
                }
            }
        }
        k.set_schedule(Box::new(Seq(0)));
        let m = k.run().unwrap().metrics;
        assert_eq!(m.timers_set, 1);
        assert_eq!(m.timers_fired, 0, "the timer never fired");
        assert_eq!(m.timers_cancelled, 1, "the crash cancelled it");
        assert_eq!(m.timers_pending, 0);
    }

    /// A durable counter for exercising crash-recover: an `Incr` bumps
    /// the local copy and fsyncs it before acking (append-before-ack);
    /// remote bumps apply in memory and stage a WAL record, fsynced only
    /// when a `Get` observes the value (sync-on-observe). A crash-recover
    /// loses the staged tail and falls back to the fsynced value.
    struct DurableCounter {
        copies: Vec<i64>,
        disk: Vec<i64>,
        staged: Vec<u64>,
    }

    impl DurableCounter {
        fn new(n: usize) -> Self {
            DurableCounter { copies: vec![0; n], disk: vec![0; n], staged: vec![0; n] }
        }
    }

    impl Protocol for DurableCounter {
        type Msg = Bump;
        type Req = Req;
        type Resp = i64;

        fn on_request(
            &mut self,
            _proc: ProcToken,
            node: NodeId,
            req: Req,
            net: &mut NetCtx<'_, Bump>,
        ) -> Poll<i64> {
            let n = node.index();
            match req {
                Req::Incr => {
                    self.copies[n] += 1;
                    net.record_wal_append(1);
                    net.record_wal_sync(1 + self.staged[n]);
                    self.staged[n] = 0;
                    self.disk[n] = self.copies[n];
                    net.broadcast(node, "bump", 8, Bump(1));
                    Poll::Ready(self.copies[n])
                }
                Req::Get => {
                    net.record_wal_sync(self.staged[n]);
                    self.staged[n] = 0;
                    self.disk[n] = self.copies[n];
                    Poll::Ready(self.copies[n])
                }
                Req::WaitFor(_) => unreachable!("not used here"),
            }
        }

        fn on_message(&mut self, to: NodeId, _from: NodeId, msg: Bump, net: &mut NetCtx<'_, Bump>) {
            self.copies[to.index()] += msg.0;
            net.record_wal_append(1);
            self.staged[to.index()] += 1;
        }

        fn poll_blocked(
            &mut self,
            _proc: ProcToken,
            _node: NodeId,
            _net: &mut NetCtx<'_, Bump>,
        ) -> Option<i64> {
            None
        }

        fn on_crash_recover(&mut self, node: NodeId, net: &mut NetCtx<'_, Bump>) {
            let n = node.index();
            net.record_wal_lost(self.staged[n]);
            self.staged[n] = 0;
            self.copies[n] = self.disk[n];
            net.record_wal_replayed(self.disk[n].max(0) as u64);
        }

        fn durable_staged(&self) -> u64 {
            self.staged.iter().sum()
        }
    }

    #[test]
    fn planned_crash_recover_falls_back_to_fsynced_state() {
        use crate::net::FaultPlan;
        let mut cfg = SimConfig::with_seed(3);
        // Recover n1 after every bump is surely applied (bumps staged,
        // never observed): the staged tail is lost, disk value restored.
        cfg.faults = FaultPlan::new().crash_recover(NodeId(1), SimTime::from_millis(1));
        let mut k = Kernel::new(DurableCounter::new(2), 2, cfg);
        k.spawn(NodeId(0), |ctx| {
            for _ in 0..3 {
                ctx.request(Req::Incr);
            }
            ctx.advance(SimTime::from_millis(2));
            ctx.request(Req::Get);
        });
        let report = k.run().unwrap();
        let m = &report.metrics;
        assert_eq!(m.wal.recoveries, 1);
        assert_eq!(m.wal.lost, 3, "the unsynced remote bumps were lost");
        assert_eq!(report.protocol.copies[1], 0, "n1 fell back to its fsynced value");
        assert_eq!(report.protocol.copies[0], 3, "the writer's own state is durable");
    }

    #[test]
    fn observed_state_survives_crash_recover() {
        // Same shape, but a process on n1 *observes* (Get) the bumps
        // before the recover: sync-on-observe makes them durable first.
        use crate::net::FaultPlan;
        let mut cfg = SimConfig::with_seed(3);
        cfg.faults = FaultPlan::new().crash_recover(NodeId(1), SimTime::from_millis(2));
        let mut k = Kernel::new(DurableCounter::new(2), 2, cfg);
        k.spawn(NodeId(0), |ctx| {
            for _ in 0..3 {
                ctx.request(Req::Incr);
            }
        });
        k.spawn(NodeId(1), |ctx| {
            ctx.advance(SimTime::from_millis(1));
            ctx.request(Req::Get);
            ctx.advance(SimTime::from_millis(2));
            ctx.request(Req::Get);
        });
        let report = k.run().unwrap();
        assert_eq!(report.metrics.wal.recoveries, 1);
        assert_eq!(report.metrics.wal.lost, 0, "everything observed was fsynced first");
        assert_eq!(report.protocol.copies[1], 3, "observed bumps survive the recover");
    }

    #[test]
    fn explored_crash_recover_spends_once_and_conserves() {
        use crate::net::FaultBudget;
        let cfg = SimConfig {
            explore_faults: Some(FaultBudget::new().crash_recover_of(NodeId(1))),
            ..SimConfig::with_seed(9)
        };
        let mut k = Kernel::new(DurableCounter::new(2), 2, cfg);
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Incr);
            ctx.request(Req::Incr);
        });
        // Recover candidates are appended last; picking the last candidate
        // fires the recover at the first step, then (the allowance spent)
        // the run proceeds normally.
        struct PickLast;
        impl Schedule for PickLast {
            fn choose(&mut self, n: usize) -> usize {
                n - 1
            }
        }
        k.set_schedule(Box::new(PickLast));
        let report = k.run().unwrap();
        assert_eq!(report.metrics.wal.recoveries, 1, "the allowance is once per run");
        assert_eq!(report.protocol.copies[0], 2);
    }

    #[test]
    fn tracing_disabled_yields_no_trace() {
        let mut k = Kernel::new(counter(1), 1, SimConfig::default());
        k.spawn(NodeId(0), |ctx| {
            ctx.request(Req::Get);
        });
        assert!(k.run().unwrap().trace.is_none());
    }

    #[test]
    fn tracing_captures_kernel_and_network_events_deterministically() {
        let run = || {
            let mut k = Kernel::new(counter(2), 2, SimConfig::with_seed(5));
            k.enable_tracing();
            k.spawn(NodeId(0), |ctx| {
                ctx.request(Req::Incr);
            });
            k.spawn(NodeId(1), move |ctx| {
                ctx.request(Req::WaitFor(1));
            });
            k.run().unwrap().trace.expect("tracing was enabled")
        };
        let tr = run();
        let cats: Vec<&str> = tr.events().map(|e| e.cat).collect();
        assert!(cats.contains(&"syscall"), "syscall spans recorded: {cats:?}");
        assert!(cats.contains(&"msg"), "message spans recorded: {cats:?}");
        assert!(cats.contains(&"stall"), "stall span recorded: {cats:?}");
        let msg = tr.events().find(|e| e.cat == "msg").unwrap();
        assert_eq!(msg.name, "bump");
        assert!(msg.dur.is_some(), "messages trace as spans");
        assert_eq!(tr.to_jsonl(), run().to_jsonl(), "same seed, byte-identical trace");
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::Deadlock { blocked: vec![ProcToken(1)], at: SimTime::ZERO };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::EventLimit { limit: 5 };
        assert!(e.to_string().contains("5"));
    }
}
