//! # mc-sim — a deterministic discrete-event simulator for message-passing
//! distributed systems
//!
//! This crate is the substrate on which the mixed-consistency DSM protocols
//! run (replacing the workstation LAN + Maya platform the paper used). It
//! provides:
//!
//! * **virtual time** ([`SimTime`]) and a latency model
//!   ([`LatencyModel`]): `base + per_byte·size + jitter`;
//! * a **network** of [`NodeId`] nodes with per-link FIFO delivery (the
//!   paper's channel assumption) and a composable [`FaultPlan`] that
//!   attacks it: seeded message drops, duplicates, reordering, timed
//!   partitions, and node crash/restart windows;
//! * **protocol timers** ([`NetCtx::set_timer`] /
//!   [`Protocol::on_timer`]) so protocols can retransmit and recover;
//! * a **kernel** ([`Kernel`]) that runs user closures as cooperative
//!   processes: every memory/synchronization operation is a syscall that
//!   parks the thread until the kernel schedules it, so executions are
//!   **bit-for-bit reproducible** from a seed while different seeds explore
//!   different interleavings;
//! * exact **metrics** ([`Metrics`]): virtual completion time, message and
//!   byte counts per message kind, blocking stalls — the quantities that
//!   differentiate PRAM, causal, and sequentially consistent memory.
//!
//! Protocols implement the [`Protocol`] trait; see `mc-proto` for the DSM
//! protocols of the paper and the crate-level example on [`Kernel`] for a
//! minimal one.

#![warn(missing_docs)]

mod kernel;
mod metrics;
mod net;
pub mod schedule;
mod time;
pub mod trace;

pub use kernel::{Kernel, Poll, ProcCtx, ProcToken, Protocol, RunReport, SimError};
pub use metrics::{DurabilityStats, FaultStats, Histogram, KindStats, Metrics, ProcStats};
pub use net::{Crash, FaultBudget, FaultPlan, LatencyModel, NetCtx, NodeId, Partition, SimConfig};
pub use schedule::{
    ActionId, DecisionTrace, RandomSchedule, ReplaySchedule, Schedule, StepInfo, StepKind, Touch,
};
pub use time::SimTime;
pub use trace::{TraceEvent, Tracer};
