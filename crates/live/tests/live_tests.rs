//! End-to-end tests of the live (threaded) executor. Scheduling here is
//! the OS's — every repetition is a fresh race — so each test loops a few
//! times and, where recording is on, replays the history through the
//! formal checkers: real concurrency, same definitions.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use mc_live::LiveSystem;
use mc_model::{check, BarrierId, Loc, LockId, ProcId, Value};
use mc_proto::{LockPropagation, Mode};

const REPS: usize = 5;

#[test]
fn producer_consumer_all_modes() {
    for mode in Mode::ALL {
        for _ in 0..REPS {
            let mut sys = LiveSystem::new(2, mode).record(true);
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 42);
                ctx.write(Loc(1), 1);
            });
            let seen = Arc::new(Mutex::new(Value::Int(0)));
            let seen2 = seen.clone();
            sys.spawn(move |ctx| {
                ctx.await_eq(Loc(1), Value::Int(1));
                *seen2.lock().unwrap() = ctx.read_pram(Loc(0));
            });
            let outcome = sys.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*seen.lock().unwrap(), Value::Int(42), "{mode}");
            let h = outcome.history.expect("recorded");
            check::check_mixed(&h).unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert!(outcome.messages > 0);
        }
    }
}

#[test]
fn locked_increments_never_lose_updates() {
    for prop in LockPropagation::ALL {
        for _ in 0..REPS {
            let mut sys = LiveSystem::new(3, Mode::Mixed).lock_propagation(prop).record(true);
            for _ in 0..3 {
                sys.spawn(|ctx| {
                    for _ in 0..4 {
                        ctx.with_write_lock(LockId(0), |ctx| {
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                        });
                    }
                });
            }
            let outcome = sys.run().unwrap_or_else(|e| panic!("{prop}: {e}"));
            assert_eq!(
                outcome.final_value(ProcId(0), Loc(0)),
                Value::Int(12),
                "{prop}: lost updates on real threads"
            );
            let h = outcome.history.expect("recorded");
            check::check_mixed(&h).unwrap_or_else(|e| panic!("{prop}: {e}"));
            assert_eq!(h.lock_epochs()[&LockId(0)].len(), 12);
        }
    }
}

#[test]
fn barrier_phases_on_real_threads() {
    for _ in 0..REPS {
        let mut sys = LiveSystem::new(3, Mode::Pram).record(true);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                for round in 0..3i64 {
                    ctx.write(Loc(p), round * 10 + p as i64);
                    ctx.barrier();
                    let v = ctx.read_pram(Loc((p + 1) % 3)).expect_i64();
                    assert_eq!(v, round * 10 + ((p as i64 + 1) % 3), "stale phase read");
                    ctx.barrier();
                }
            });
        }
        let outcome = sys.run().unwrap();
        let h = outcome.history.expect("recorded");
        check::check_pram(&h).unwrap();
        mc_model::programs::check_pram_consistent_program(&h).unwrap();
        assert_eq!(h.barrier_rounds()[&BarrierId(0)].len(), 6);
    }
}

#[test]
fn counters_converge_without_locks() {
    for _ in 0..REPS {
        let mut sys = LiveSystem::new(3, Mode::Causal);
        for _ in 0..3 {
            sys.spawn(|ctx| {
                for _ in 0..5 {
                    ctx.add(Loc(0), -1i64);
                }
                ctx.await_eq(Loc(0), Value::Int(-15));
            });
        }
        let outcome = sys.run().unwrap();
        for p in 0..3 {
            assert_eq!(outcome.final_value(ProcId(p), Loc(0)), Value::Int(-15));
        }
    }
}

#[test]
fn sc_mode_serializes_at_the_server() {
    for _ in 0..REPS {
        let mut sys = LiveSystem::new(2, Mode::Sc).record(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 7);
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), Value::Int(1));
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(7));
        });
        let outcome = sys.run().unwrap();
        assert_eq!(outcome.final_value(ProcId(0), Loc(0)), Value::Int(7));
        let h = outcome.history.expect("recorded");
        assert!(mc_model::sc::check_sequential(&h).unwrap().is_sc());
    }
}

#[test]
fn subgroup_barriers_live() {
    let mut sys = LiveSystem::new(4, Mode::Mixed)
        .barrier_group(BarrierId(1), vec![ProcId(0), ProcId(1)])
        .barrier_group(BarrierId(2), vec![ProcId(2), ProcId(3)]);
    for p in 0..4u32 {
        sys.spawn(move |ctx| {
            let bar = if p < 2 { BarrierId(1) } else { BarrierId(2) };
            let partner = Loc(p ^ 1);
            ctx.write(Loc(p), p as i64 + 1);
            ctx.barrier_on(bar);
            assert_eq!(ctx.read_pram(partner).expect_i64(), partner.0 as i64 + 1);
        });
    }
    sys.run().unwrap();
}

#[test]
fn manager_sharding_live() {
    let mut sys = LiveSystem::new(3, Mode::Mixed).manager_shards(2);
    for p in 0..3u32 {
        sys.spawn(move |ctx| {
            for r in 0..3 {
                let lock = LockId((p + r) % 4);
                ctx.with_write_lock(lock, |ctx| {
                    let v = ctx.read_causal(Loc(lock.0)).expect_i64();
                    ctx.write(Loc(lock.0), v + 1);
                });
            }
        });
    }
    let outcome = sys.run().unwrap();
    let total: i64 = (0..4u32).map(|l| outcome.final_value(ProcId(0), Loc(l)).expect_i64()).sum();
    assert_eq!(total, 9);
}

#[test]
fn long_running_programs_outlive_the_op_timeout() {
    // Regression: the coordinator must not abort a program whose total
    // runtime exceeds the per-operation timeout — only a single *blocked
    // operation* may time out.
    let mut sys = LiveSystem::new(2, Mode::Mixed).timeout(Duration::from_millis(150)).record(true);
    sys.spawn(|ctx| {
        for i in 0..4i64 {
            std::thread::sleep(Duration::from_millis(100)); // local work
            ctx.write(Loc(0), i);
        }
        ctx.write(Loc(1), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(1), Value::Int(1));
    });
    let outcome = sys.run().expect("long programs must not be aborted");
    check::check_mixed(&outcome.history.unwrap()).unwrap();
}

#[test]
fn deadlock_times_out_with_diagnostics() {
    let mut sys = LiveSystem::new(1, Mode::Mixed).timeout(Duration::from_millis(200));
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(0), Value::Int(99)); // nobody writes it
    });
    match sys.run() {
        Err(mc_live::LiveError::ProcPanicked { proc, message }) => {
            assert_eq!(proc, ProcId(0));
            assert!(message.contains("timed out"), "{message}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn lossy_channels_with_session_layer_still_converge() {
    // A quarter of all messages (updates, grants, acks alike) vanish;
    // the session layer's retransmission must mask every loss, for all
    // three lock-propagation variants, and the histories must still
    // satisfy Definition 4.
    for prop in LockPropagation::ALL {
        for rep in 0..3u64 {
            let mut sys = LiveSystem::new(3, Mode::Mixed)
                .lock_propagation(prop)
                .lossy(0.25, rep)
                .reliable(true)
                .record(true);
            for _ in 0..3 {
                sys.spawn(|ctx| {
                    for _ in 0..3 {
                        ctx.with_write_lock(LockId(0), |ctx| {
                            let v = ctx.read_causal(Loc(0)).expect_i64();
                            ctx.write(Loc(0), v + 1);
                        });
                    }
                    ctx.barrier();
                    assert_eq!(ctx.read_causal(Loc(0)), Value::Int(9), "lost an increment");
                });
            }
            let outcome = sys.run().unwrap_or_else(|e| panic!("{prop} rep {rep}: {e}"));
            assert!(outcome.lost > 0, "{prop} rep {rep}: the shim dropped nothing");
            assert_eq!(outcome.dropped_sends, 0, "{prop} rep {rep}");
            let h = outcome.history.expect("recorded");
            check::check_mixed(&h).unwrap_or_else(|e| panic!("{prop} rep {rep}: {e}"));
        }
    }
}

#[test]
fn sc_server_survives_lossy_links_with_session() {
    for rep in 0..3u64 {
        let mut sys = LiveSystem::new(2, Mode::Sc).lossy(0.3, 100 + rep).reliable(true);
        sys.spawn(|ctx| {
            ctx.write(Loc(0), 7);
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), Value::Int(1));
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(7));
        });
        let outcome = sys.run().unwrap_or_else(|e| panic!("rep {rep}: {e}"));
        assert_eq!(outcome.final_value(ProcId(0), Loc(0)), Value::Int(7));
        assert!(outcome.lost > 0, "rep {rep}");
    }
}

#[test]
fn clean_runs_report_zero_silent_drops() {
    // The teardown invariant made visible: on a quiet network nothing is
    // lost on closed inboxes and the lossy counter stays zero.
    let mut sys = LiveSystem::new(2, Mode::Mixed);
    sys.spawn(|ctx| {
        ctx.write(Loc(0), 1);
        ctx.write(Loc(1), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(1), Value::Int(1));
    });
    let outcome = sys.run().unwrap();
    assert_eq!(outcome.dropped_sends, 0);
    assert_eq!(outcome.lost, 0);
}

#[test]
fn histories_from_many_races_all_check() {
    // The live analogue of the seed sweep: repeat a racy mixed-label
    // program many times; every recorded history must satisfy
    // Definition 4.
    for rep in 0..20 {
        let mut sys = LiveSystem::new(3, Mode::Mixed).record(true);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                ctx.write(Loc(p), p as i64 + 10);
                let _ = ctx.read_pram(Loc((p + 1) % 3));
                let _ = ctx.read_causal(Loc((p + 2) % 3));
                ctx.write(Loc(p), p as i64 + 20);
            });
        }
        let outcome = sys.run().unwrap();
        let h = outcome.history.expect("recorded");
        check::check_mixed(&h).unwrap_or_else(|e| {
            panic!(
                "rep {rep}: real-thread execution violated Definition 4: {e}\n{}",
                h.to_pretty_string()
            )
        });
    }
}

#[test]
fn live_tracing_records_message_events() {
    let mut sys = LiveSystem::new(2, Mode::Causal).trace(true).reliable(true);
    sys.spawn(|ctx| {
        ctx.write(Loc(0), 7);
        ctx.write(Loc(1), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(1), Value::Int(1));
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(7));
    });
    let outcome = sys.run().unwrap();
    let trace = outcome.trace.expect("tracing enabled");
    assert!(!trace.is_empty());
    // Every event is a message (or a lossy drop, impossible here), on a
    // wall-clock timeline that only moves forward within the run.
    let mut update_events = 0;
    for ev in trace.events() {
        assert!(matches!(ev.cat, "msg" | "fault"), "unexpected category {}", ev.cat);
        if ev.name == "update" {
            update_events += 1;
        }
    }
    assert!(update_events > 0, "the causal writes must broadcast updates");
    // The exporters accept the live trace unchanged.
    assert!(trace.to_jsonl().contains("\"cat\": \"msg\""));
    assert!(trace.to_chrome_trace().contains("\"traceEvents\""));

    // Off by default: no tracer, no trace.
    let mut quiet = LiveSystem::new(1, Mode::Causal);
    quiet.spawn(|ctx| {
        ctx.write(Loc(0), 1);
    });
    assert!(quiet.run().unwrap().trace.is_none());
}

#[test]
fn batched_runs_converge_and_check_on_real_threads() {
    // Same programs, batching on: coalesced batches + delta-compressed
    // vectors must produce the same results the unbatched paths do, and
    // the recorded histories must still satisfy Definition 4.
    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
        for _ in 0..REPS {
            let mut sys = LiveSystem::new(3, mode)
                .batching(Some(mc_proto::BatchPolicy::default()))
                .record(true);
            for p in 0..3u32 {
                sys.spawn(move |ctx| {
                    for i in 0..10i64 {
                        ctx.write(Loc(p), i);
                    }
                    ctx.add(Loc(3), 1);
                    ctx.barrier();
                    for q in 0..3u32 {
                        assert_eq!(ctx.read_causal(Loc(q)), Value::Int(9), "{mode}: stale");
                    }
                    assert_eq!(ctx.read_causal(Loc(3)), Value::Int(3), "{mode}: lost add");
                });
            }
            let outcome = sys.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            let h = outcome.history.expect("recorded");
            check::check_mixed(&h).unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }
}

#[test]
fn batched_writes_cut_live_traffic() {
    // 30 same-location writes per process coalesce into a handful of
    // batch frames: the batched run must move well under half the
    // messages of the unbatched one.
    let run = |batch: Option<mc_proto::BatchPolicy>| {
        let mut sys = LiveSystem::new(3, Mode::Causal).batching(batch);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                for i in 0..30i64 {
                    ctx.write(Loc(p), i);
                }
                ctx.barrier();
                for q in 0..3u32 {
                    assert_eq!(ctx.read_causal(Loc(q)), Value::Int(29));
                }
            });
        }
        sys.run().expect("clean run")
    };
    let unbatched = run(None);
    let batched = run(Some(mc_proto::BatchPolicy::default()));
    assert!(
        batched.messages * 2 <= unbatched.messages,
        "batched {} vs unbatched {} messages",
        batched.messages,
        unbatched.messages
    );
    assert!(
        batched.bytes < unbatched.bytes,
        "batched {} vs unbatched {} bytes",
        batched.bytes,
        unbatched.bytes
    );
}

#[test]
fn durable_cluster_recovers_from_disk_across_restarts() {
    let dir = std::env::temp_dir().join(format!("mc-live-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First incarnation: a clean run that leaves durable state behind.
    let mut sys =
        LiveSystem::new(2, Mode::Causal).durability(mc_proto::DurabilityPolicy::new(4), &dir);
    sys.spawn(|ctx| {
        ctx.write(Loc(0), 42);
        ctx.write(Loc(1), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(1), Value::Int(1));
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42));
    });
    let first = sys.run().expect("first incarnation");
    assert!(first.wal.appends > 0, "durable writes must hit the log");
    assert_eq!(first.wal.appends, first.wal.synced, "shutdown leaves nothing staged");
    assert_eq!(first.wal.recoveries, 0);
    assert_eq!(first.incarnation(ProcId(0)), 0);

    // Second incarnation from the same directory: both replicas replay
    // snapshot + log, bump their incarnation, and still hold the
    // pre-restart writes even though no process writes them again.
    let mut sys =
        LiveSystem::new(2, Mode::Causal).durability(mc_proto::DurabilityPolicy::new(4), &dir);
    sys.spawn(|ctx| {
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42), "own durable write lost");
        ctx.write(Loc(2), 7);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(2), Value::Int(7));
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42), "ingested durable write lost");
    });
    let second = sys.run().expect("second incarnation");
    assert_eq!(second.wal.recoveries, 2, "both replicas restart from disk");
    assert!(
        second.wal.replayed > 0 || first.wal.snapshots > 0,
        "recovery must come from the log tail or a snapshot"
    );
    assert_eq!(second.incarnation(ProcId(0)), 1);
    assert_eq!(second.incarnation(ProcId(1)), 1);
    assert_eq!(second.final_value(ProcId(1), Loc(0)), Value::Int(42));

    // Third incarnation with replica 1's disk wiped: the reborn node 0
    // learns from its RecoverReq round that the fresh peer has none of
    // its writes and pushes its whole own suffix back, so the peer
    // converges to a durable prefix it never observed in this process.
    let _ = std::fs::remove_dir_all(dir.join("replica-1"));
    let mut sys =
        LiveSystem::new(2, Mode::Causal).durability(mc_proto::DurabilityPolicy::new(4), &dir);
    sys.spawn(|ctx| {
        ctx.write(Loc(3), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(0), Value::Int(42));
        ctx.await_eq(Loc(2), Value::Int(7));
    });
    let third = sys.run().expect("third incarnation");
    assert_eq!(third.wal.recoveries, 1, "only replica 0 had state on disk");
    assert_eq!(third.incarnation(ProcId(0)), 2);
    assert_eq!(third.incarnation(ProcId(1)), 0);
    assert_eq!(third.final_value(ProcId(1), Loc(0)), Value::Int(42));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_lossy_session_still_converges() {
    // Batching stacked under the session layer on lossy links: the
    // piggybacked acks ride batch frames and retransmission masks every
    // drop.
    for rep in 0..3u64 {
        let mut sys = LiveSystem::new(3, Mode::Mixed)
            .lossy(0.2, 900 + rep)
            .reliable(true)
            .batching(Some(mc_proto::BatchPolicy::default()))
            .record(true);
        for p in 0..3u32 {
            sys.spawn(move |ctx| {
                for i in 0..5i64 {
                    ctx.write(Loc(p), i);
                }
                ctx.barrier();
                for q in 0..3u32 {
                    assert_eq!(ctx.read_causal(Loc(q)), Value::Int(4), "rep {rep}: stale");
                }
            });
        }
        let outcome = sys.run().unwrap_or_else(|e| panic!("rep {rep}: {e}"));
        assert!(outcome.lost > 0, "rep {rep}: the shim dropped nothing");
        let h = outcome.history.expect("recorded");
        check::check_mixed(&h).unwrap_or_else(|e| panic!("rep {rep}: {e}"));
    }
}

#[test]
fn sharded_producer_consumer_live() {
    // The live twin of the simulator's sharded producer/consumer: locs
    // 0 and 1 land in shards 0 and 1, both active procs subscribe to
    // both, the third proc to neither — so it must receive nothing.
    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
        for _ in 0..REPS {
            let sc = mc_proto::ShardConfig::new(2, vec![vec![0, 1], vec![0, 1], vec![]]);
            let mut sys = LiveSystem::new(3, mode).sharding(Some(sc));
            let seen = Arc::new(Mutex::new(Value::Int(-1)));
            let seen2 = seen.clone();
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 42);
                ctx.write(Loc(1), 1);
            });
            sys.spawn(move |ctx| {
                ctx.await_eq(Loc(1), Value::Int(1));
                *seen2.lock().unwrap() = ctx.read_causal(Loc(0));
            });
            sys.spawn(|_ctx| {});
            let outcome = sys.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(*seen.lock().unwrap(), Value::Int(42), "{mode}");
            // The uninterested third replica saw none of p0's writes.
            assert_eq!(outcome.applied(ProcId(2))[ProcId(0)], 0, "{mode}");
            assert_eq!(outcome.final_value(ProcId(2), Loc(0)), Value::INITIAL, "{mode}");
        }
    }
}

#[test]
fn sharded_interest_cuts_live_traffic() {
    // Four procs, four shards. With full replication every write fans
    // out to 3 peers; with ring interest ({p, p+1}) each shard has two
    // subscribers, so each write travels to exactly one — the message
    // count must drop well below the full run's.
    let run = |interest: Vec<Vec<usize>>| {
        let sc = mc_proto::ShardConfig::new(4, interest);
        let mut sys = LiveSystem::new(4, Mode::Causal).sharding(Some(sc));
        for p in 0..4u32 {
            sys.spawn(move |ctx| {
                for i in 0..10i64 {
                    ctx.write(Loc(p), i);
                }
            });
        }
        sys.run().expect("clean run")
    };
    let full = run((0..4).map(|_| vec![0, 1, 2, 3]).collect());
    let ring = run((0..4).map(|p| vec![p, (p + 1) % 4]).collect());
    assert!(
        ring.messages * 2 <= full.messages,
        "ring interest {} vs full replication {} messages",
        ring.messages,
        full.messages
    );
}

#[test]
fn sharded_dynamic_first_touch_live() {
    // p1 statically subscribes only to shard 0; its await of loc 1
    // first-touches shard 1, subscribes through the directory, and the
    // backfill push delivers p0's earlier write.
    for _ in 0..REPS {
        let sc = mc_proto::ShardConfig::new(2, vec![vec![0, 1], vec![0]]).with_dynamic(true);
        let mut sys = LiveSystem::new(2, Mode::Causal).sharding(Some(sc));
        sys.spawn(|ctx| {
            ctx.write(Loc(1), 9); // shard 1
            ctx.write(Loc(0), 1); // shard 0 flag
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(0), Value::Int(1));
            ctx.await_eq(Loc(1), Value::Int(9));
            assert_eq!(ctx.read_causal(Loc(1)), Value::Int(9));
        });
        let outcome = sys.run().unwrap();
        assert!(
            outcome.replica(ProcId(1)).shards().unwrap().subscribed(1),
            "the first touch must leave a durable subscription behind"
        );
    }
}

#[test]
fn sharded_batched_writes_coalesce_live() {
    // Batching stacked on sharding: interleaved writes to two shards
    // coalesce into per-shard chains, and the cross-shard dependency
    // triples still deliver causality on real threads.
    for _ in 0..REPS {
        let sc = mc_proto::ShardConfig::full(2, 2);
        let mut sys = LiveSystem::new(2, Mode::Causal)
            .sharding(Some(sc))
            .batching(Some(mc_proto::BatchPolicy::default()));
        sys.spawn(|ctx| {
            for i in 0..8i64 {
                ctx.write(Loc((i % 4) as u32), i); // shards 0 and 1 interleaved
            }
            ctx.write(Loc(5), 99); // flag in shard 1
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(5), Value::Int(99));
            for (loc, want) in [(0u32, 4i64), (1, 5), (2, 6), (3, 7)] {
                assert_eq!(ctx.read_causal(Loc(loc)), Value::Int(want), "loc {loc} stale");
            }
        });
        sys.run().unwrap();
    }
}

#[test]
fn sharded_durable_cluster_recovers_across_restarts() {
    let dir = std::env::temp_dir().join(format!("mc-live-shard-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sc = || mc_proto::ShardConfig::new(2, vec![vec![0, 1], vec![0, 1]]);

    // First incarnation: a clean sharded run leaves durable per-shard
    // chains behind. `snapshot_every = 1` would compact eagerly in the
    // unsharded protocol; sharded replicas must stay log-only.
    let mut sys = LiveSystem::new(2, Mode::Causal)
        .sharding(Some(sc()))
        .durability(mc_proto::DurabilityPolicy::new(1), &dir);
    sys.spawn(|ctx| {
        ctx.write(Loc(0), 42); // shard 0
        ctx.write(Loc(1), 1); // shard 1 flag
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(1), Value::Int(1));
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42));
    });
    let first = sys.run().expect("first incarnation");
    assert!(first.wal.appends > 0, "durable sharded writes must hit the log");
    assert_eq!(first.wal.snapshots, 0, "sharded replicas are log-only");
    assert_eq!(first.wal.recoveries, 0);

    // Second incarnation from the same directory: both replicas replay
    // their WALs (own chains re-minted, remote chains re-ingested) and
    // still hold the pre-restart writes.
    let mut sys = LiveSystem::new(2, Mode::Causal)
        .sharding(Some(sc()))
        .durability(mc_proto::DurabilityPolicy::new(1), &dir);
    sys.spawn(|ctx| {
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42), "own durable write lost");
        ctx.write(Loc(2), 7); // shard 0
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(2), Value::Int(7));
        assert_eq!(ctx.read_causal(Loc(0)), Value::Int(42), "ingested durable write lost");
    });
    let second = sys.run().expect("second incarnation");
    assert_eq!(second.wal.recoveries, 2, "both replicas restart from disk");
    assert!(second.wal.replayed > 0, "sharded recovery replays the log");
    assert_eq!(second.incarnation(ProcId(0)), 1);
    assert_eq!(second.incarnation(ProcId(1)), 1);
    assert_eq!(second.final_value(ProcId(1), Loc(0)), Value::Int(42));

    // Third incarnation with replica 1's disk wiped: the fresh peer
    // re-fetches the shards it subscribes to through the per-shard
    // recovery answers of the reborn node 0.
    let _ = std::fs::remove_dir_all(dir.join("replica-1"));
    let mut sys = LiveSystem::new(2, Mode::Causal)
        .sharding(Some(sc()))
        .durability(mc_proto::DurabilityPolicy::new(1), &dir);
    sys.spawn(|ctx| {
        ctx.write(Loc(3), 1); // shard 1
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(0), Value::Int(42));
        ctx.await_eq(Loc(2), Value::Int(7));
    });
    let third = sys.run().expect("third incarnation");
    assert_eq!(third.wal.recoveries, 1, "only replica 0 had state on disk");
    assert_eq!(third.final_value(ProcId(1), Loc(0)), Value::Int(42));
    assert_eq!(third.final_value(ProcId(1), Loc(2)), Value::Int(7));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_amortizes_live_fsyncs() {
    // Same program, per-write fsync vs group commit: the grouped run
    // must reach disk in fewer fsync calls — the amortization the
    // policy exists for. (Append counts vary run to run: consumer-side
    // ingest records depend on wall-clock batch flush timing.) Reads
    // and awaits are observation barriers, so nothing externalized is
    // ever staged when the program acts on it.
    let run = |gc: bool| {
        let dir = std::env::temp_dir().join(format!("mc-live-gc-{}-{}", gc, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sys = LiveSystem::new(2, Mode::Causal)
            .durability(mc_proto::DurabilityPolicy::new(1024).with_group_commit(gc), &dir)
            .batching(Some(mc_proto::BatchPolicy::default()));
        sys.spawn(|ctx| {
            for i in 0..8i64 {
                ctx.write(Loc(0), i);
            }
            ctx.write(Loc(1), 1);
        });
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), Value::Int(1));
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(7));
        });
        let outcome = sys.run().expect("clean run");
        let _ = std::fs::remove_dir_all(&dir);
        outcome
    };
    let per_write = run(false);
    let grouped = run(true);
    assert!(
        grouped.wal.fsyncs < per_write.wal.fsyncs,
        "group commit {} fsyncs vs per-write {}",
        grouped.wal.fsyncs,
        per_write.wal.fsyncs
    );
}
