//! The live executor: processes as threads, links as channels, the
//! `mc-proto` state machines unchanged.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use mc_model::{
    BarrierId, BarrierRound, History, HistoryBuilder, Loc, LockId, LockMode, MalformedHistory,
    OpKind, ProcId, ReadLabel, VClock, Value, WriteId,
};
use mc_proto::{
    decode_wal, BatchEntry, BatchPolicy, DsmConfig, DurabilityPolicy, FileDisk, GrantInfo,
    LockPropagation, Manager, Mode, Msg, Replica, Session, SessionConfig, ShardConfig, Snapshot,
    UpdatePayload, WalRecord, WalTail,
};
use mc_sim::{DurabilityStats, SimTime, TraceEvent, Tracer};

/// What travels on a node's inbox: a protocol message (tagged with the
/// sending node, which the session layer needs to identify the link) or
/// the shutdown signal.
///
/// Public so alternative transports (e.g. the TCP runtime in `mc-net`)
/// can feed decoded frames into the same node mains.
pub enum Wire {
    /// A protocol message from node `from`.
    Proto {
        /// The sending node.
        from: NodeId,
        /// The message itself.
        msg: Msg,
    },
    /// Drain-and-exit: the coordinator saw every process finish.
    Shutdown,
}

/// Node id in the live topology (same layout as the simulator: process
/// `i` on node `i`, manager shards after).
pub type NodeId = usize;

/// How a live node's outgoing messages reach their destination. The
/// in-process executor wires nodes with crossbeam channels
/// ([`ChannelTransport`]); `mc-net` substitutes TCP links carrying
/// length-prefixed binary frames. Everything above this seam — session
/// fencing, retransmission, batching, recovery — is shared.
pub trait Transport: Send + Sync {
    /// Delivers one protocol message. Returns `false` if the
    /// destination's inbox is gone (counted as a lost send unless the
    /// run is already shutting down).
    fn deliver(&self, from: NodeId, to: NodeId, msg: Msg) -> bool;

    /// Tells node `to` to drain its inbox and exit.
    fn shutdown(&self, to: NodeId);
}

/// The in-process transport: one unbounded channel per node.
pub struct ChannelTransport {
    senders: Vec<Sender<Wire>>,
}

impl ChannelTransport {
    /// Wraps the per-node inbox senders.
    pub fn new(senders: Vec<Sender<Wire>>) -> Self {
        ChannelTransport { senders }
    }
}

impl Transport for ChannelTransport {
    fn deliver(&self, from: NodeId, to: NodeId, msg: Msg) -> bool {
        self.senders[to].send(Wire::Proto { from, msg }).is_ok()
    }

    fn shutdown(&self, to: NodeId) {
        let _ = self.senders[to].send(Wire::Shutdown);
    }
}

/// How often a node with unacknowledged session payloads retransmits.
/// Wall-clock ticks stand in for the simulator's per-link timers; the
/// period is coarse enough that a healthy ack always wins the race.
const RETX_TICK: Duration = Duration::from_millis(1);

/// One process's outgoing update buffer (batching enabled only) — the
/// live twin of the simulator protocol's batch state, flushed on sync
/// operations, at the size limit, and on wall-clock age checks.
#[derive(Default)]
struct LiveBatch {
    first_seq: u32,
    upto: u32,
    entries: Vec<BatchEntry>,
    /// Latest entry index per location (coalescing target).
    last_idx: HashMap<Loc, usize>,
    /// Dependency vector of the last buffered write (vector modes).
    deps: Option<VClock>,
    /// When the buffer last became non-empty (the wall-clock flush
    /// window starts here).
    since: Option<Instant>,
}

/// One process's outgoing buffer for a single shard (sharding with
/// batching) — the live twin of the simulator's per-shard batch state,
/// sharing one wall-clock flush window across all shards.
#[derive(Default)]
struct LiveShardBatch {
    prev: u32,
    upto: u32,
    entries: Vec<BatchEntry>,
    /// Latest entry index per location (coalescing target).
    last_idx: HashMap<Loc, usize>,
    /// Sparse dependency triples of the last buffered write.
    deps: Vec<(u32, ProcId, u32)>,
}

/// Shared durability counters, aggregated into [`LiveOutcome::wal`] at
/// teardown (the live twin of the simulator's `Metrics::wal`).
#[derive(Default)]
pub struct WalCounters {
    appends: AtomicU64,
    synced: AtomicU64,
    /// Fsync calls that made at least one record durable (`fsyncs <
    /// synced` is the signature of effective group-commit batching).
    fsyncs: AtomicU64,
    replayed: AtomicU64,
    snapshots: AtomicU64,
    recoveries: AtomicU64,
}

impl WalCounters {
    /// Snapshots the counters into the simulator's stats shape (`lost`
    /// is a simulator-only notion and reads zero here).
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            appends: self.appends.load(Ordering::Relaxed),
            synced: self.synced.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            lost: 0,
            replayed: self.replayed.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64: a statistically solid 64-bit mixer, enough for loss rolls.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The send side every live node shares: counters, the lossy shim, the
/// optional tracer — all in front of a pluggable [`Transport`].
#[derive(Clone)]
pub struct Net {
    transport: Arc<dyn Transport>,
    messages: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    /// Drop probability per message (the lossy-channel shim).
    loss: f64,
    seed: u64,
    rolls: Arc<AtomicU64>,
    /// Messages eaten by the lossy shim (intentional).
    lost: Arc<AtomicU64>,
    /// Messages that hit an already-closed inbox (a bug unless the run is
    /// already shutting down — asserted zero at teardown).
    closed_dropped: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
    /// Shared structured-event tracer, when enabled. Live events are keyed
    /// by wall-clock time since `epoch`, reusing the simulator's trace
    /// format (so the same Perfetto/JSONL exporters apply).
    tracer: Option<Arc<Mutex<Tracer>>>,
    epoch: Instant,
}

impl Net {
    /// Builds a loss-free, untraced net over `transport` — what an
    /// external transport (TCP) wants; the in-process executor fills in
    /// the lossy shim and tracer itself.
    pub fn new(transport: Arc<dyn Transport>) -> Net {
        Net {
            transport,
            messages: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
            loss: 0.0,
            seed: 0,
            rolls: Arc::new(AtomicU64::new(0)),
            lost: Arc::new(AtomicU64::new(0)),
            closed_dropped: Arc::new(AtomicU64::new(0)),
            shutting_down: Arc::new(AtomicBool::new(false)),
            tracer: None,
            epoch: Instant::now(),
        }
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Modeled wire bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Sends that hit a closed inbox before shutdown began (a bug).
    pub fn dropped_sends(&self) -> u64 {
        self.closed_dropped.load(Ordering::SeqCst)
    }

    /// Flips the run into shutdown mode (closed-inbox sends stop
    /// counting as losses) and tells every one of the `nnodes` nodes to
    /// drain and exit.
    pub fn begin_shutdown(&self, nnodes: usize) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for node in 0..nnodes {
            self.transport.shutdown(node);
        }
    }

    /// Records an instant event on the shared tracer (no-op when tracing
    /// is off), stamped with the wall-clock offset from the run start.
    fn trace_instant(
        &self,
        cat: &'static str,
        name: &'static str,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) {
        let Some(tracer) = &self.tracer else { return };
        let t = SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
        tracer.lock().expect("tracer healthy").record(TraceEvent {
            t,
            dur: None,
            cat,
            name: name.to_string(),
            track: to as u32,
            args: vec![
                ("from", from.to_string()),
                ("to", to.to_string()),
                ("bytes", bytes.to_string()),
            ],
        });
    }

    fn send(&self, from: NodeId, to: NodeId, msg: Msg) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(msg.wire_bytes(), Ordering::Relaxed);
        if self.loss > 0.0 {
            let n = self.rolls.fetch_add(1, Ordering::Relaxed);
            let r = splitmix64(self.seed ^ n) as f64 / u64::MAX as f64;
            if r < self.loss {
                self.lost.fetch_add(1, Ordering::Relaxed);
                self.trace_instant("fault", "drop", from, to, msg.wire_bytes());
                return;
            }
        }
        // Name session-wrapped payloads by what they carry: "update" is
        // a more useful track label than "sess_data".
        let kind = match &msg {
            Msg::SessData { inner, .. } => inner.kind(),
            m => m.kind(),
        };
        self.trace_instant("msg", kind, from, to, msg.wire_bytes());
        if !self.transport.deliver(from, to, msg) && !self.shutting_down.load(Ordering::SeqCst) {
            // A closed inbox before shutdown begins means a message was
            // silently lost while the run still depended on it.
            self.closed_dropped.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Converts a live node id into the simulator's node-id type, which keys
/// the shared session state machines.
fn nid(node: NodeId) -> mc_sim::NodeId {
    mc_sim::NodeId(node as u32)
}

/// Sends `msg` from `from` to `to`, wrapping it with a session sequence
/// number when the session layer is on.
fn sess_send(net: &Net, session: &mut Option<Session>, from: NodeId, to: NodeId, msg: Msg) {
    match session {
        None => net.send(from, to, msg),
        Some(s) => {
            let wrapped = s.sender(nid(from), nid(to)).wrap(msg);
            net.send(from, to, wrapped);
        }
    }
}

/// Filters one arriving message through the session layer: acks are
/// consumed, data is sequenced (answering with a cumulative ack) and the
/// in-order payloads are returned for dispatch. Without a session the
/// message passes through untouched.
fn sess_receive(
    net: &Net,
    session: &mut Option<Session>,
    me: NodeId,
    from: NodeId,
    msg: Msg,
) -> Vec<Msg> {
    let Some(s) = session else { return vec![msg] };
    match msg {
        Msg::SessAck { upto, epoch } => {
            let cfg = s.cfg;
            s.sender(nid(me), nid(from)).on_ack(upto, epoch, &cfg);
            Vec::new()
        }
        Msg::SessData { seq, epoch, inner } => {
            let rx = s.receiver(nid(from), nid(me));
            let (ready, upto) = rx.on_data(seq, epoch, *inner);
            let ack_epoch = rx.epoch();
            // Acks travel raw: sessioning them would recurse forever.
            net.send(me, from, Msg::SessAck { upto, epoch: ack_epoch });
            ready
        }
        other => vec![other],
    }
}

/// Retransmits every unacknowledged payload on every outgoing link of
/// `me`. Called on wall-clock ticks while anything is outstanding.
fn sess_retransmit(net: &Net, session: &mut Option<Session>, me: NodeId) {
    let Some(s) = session else { return };
    let cfg = s.cfg;
    for ((_, to), tx) in s.senders_mut() {
        let epoch = tx.epoch();
        for (seq, inner) in tx.on_timeout(&cfg) {
            net.send(me, to.index(), Msg::SessData { seq, epoch, inner: Box::new(inner) });
        }
    }
}

/// Error from a live run.
#[derive(Debug)]
pub enum LiveError {
    /// A process thread panicked (deadlock timeouts surface this way,
    /// with a descriptive payload).
    ProcPanicked {
        /// The process that panicked.
        proc: ProcId,
        /// The panic message, if it was a string.
        message: String,
    },
    /// The recorded history failed validation.
    Malformed(MalformedHistory),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::ProcPanicked { proc, message } => {
                write!(f, "live process {proc} panicked: {message}")
            }
            LiveError::Malformed(e) => write!(f, "recorded history is malformed: {e}"),
        }
    }
}

impl std::error::Error for LiveError {}

/// Result of a live run.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Recorded history, when enabled.
    pub history: Option<History>,
    /// Total protocol messages sent.
    pub messages: u64,
    /// Total modeled payload bytes.
    pub bytes: u64,
    /// Messages eaten by the lossy-channel shim (zero unless
    /// [`LiveSystem::lossy`] was configured).
    pub lost: u64,
    /// Messages that found their destination inbox already closed before
    /// shutdown began. Always zero on a successful run (asserted at
    /// teardown); exposed so the invariant is visible.
    pub dropped_sends: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Structured event trace when [`LiveSystem::trace`] was enabled,
    /// keyed by wall-clock time since the run started. Exportable as
    /// JSONL or a Chrome/Perfetto trace, like the simulator's.
    pub trace: Option<Tracer>,
    /// Durability counters when [`LiveSystem::durability`] was enabled
    /// (all zero otherwise). `lost` stays zero here: live records lost
    /// to a `kill -9` die with the process and are only observable as
    /// the torn tail the next incarnation recovers through.
    pub wal: DurabilityStats,
    replicas: Vec<Replica>,
    server: Manager,
    mode: Mode,
}

impl LiveOutcome {
    /// Assembles an outcome from externally-run nodes. The TCP runtime
    /// (`mc-net`) drives the same [`run_proc_node`]/[`run_manager_node`]
    /// mains on its own threads and collects the identical parts; the
    /// lossy-shim (`lost`) and closed-inbox (`dropped_sends`) counters
    /// are in-process notions and read zero there.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        history: Option<History>,
        wal: DurabilityStats,
        messages: u64,
        bytes: u64,
        wall: Duration,
        replicas: Vec<Replica>,
        server: Manager,
        mode: Mode,
    ) -> LiveOutcome {
        LiveOutcome {
            history,
            wal,
            messages,
            bytes,
            lost: 0,
            dropped_sends: 0,
            wall,
            trace: None,
            replicas,
            server,
            mode,
        }
    }

    /// The final value of `loc`: from `proc`'s replica in the replicated
    /// modes (all in-flight updates are drained before shutdown), from
    /// the server in SC mode.
    pub fn final_value(&self, proc: ProcId, loc: Loc) -> Value {
        if self.mode.is_replicated() {
            self.replicas[proc.index()].peek(loc)
        } else {
            self.server.peek(loc)
        }
    }

    /// The replica incarnation number `proc` finished on (0 for a node
    /// that never crash-recovered).
    pub fn incarnation(&self, proc: ProcId) -> u32 {
        self.replicas[proc.index()].incarnation
    }

    /// `proc`'s final applied vector clock.
    pub fn applied(&self, proc: ProcId) -> &VClock {
        &self.replicas[proc.index()].applied
    }

    /// Read access to `proc`'s final replica state (tests, invariant
    /// checks — e.g. shard subscriptions after a dynamic first touch).
    pub fn replica(&self, proc: ProcId) -> &Replica {
        &self.replicas[proc.index()]
    }
}

/// Builder for a live (threaded) mixed-consistency system. Mirrors the
/// simulator-backed `mixed_consistency::System` API.
pub struct LiveSystem {
    cfg: DsmConfig,
    record: bool,
    trace: bool,
    timeout: Duration,
    loss: f64,
    seed: u64,
    durability_dir: Option<PathBuf>,
    #[allow(clippy::type_complexity)]
    procs: Vec<Box<dyn FnOnce(&mut LiveCtx) + Send + 'static>>,
}

impl fmt::Debug for LiveSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveSystem")
            .field("cfg", &self.cfg)
            .field("nprocs", &self.procs.len())
            .finish()
    }
}

impl LiveSystem {
    /// Creates a live system of `nprocs` processes on memory `mode`.
    pub fn new(nprocs: usize, mode: Mode) -> Self {
        LiveSystem {
            cfg: DsmConfig::new(nprocs, mode),
            record: false,
            trace: false,
            timeout: Duration::from_secs(10),
            loss: 0.0,
            seed: 0,
            durability_dir: None,
            procs: Vec::new(),
        }
    }

    /// Enables durable replicas: each process appends to a write-ahead
    /// log under `dir/replica-{i}` (own writes fsynced before the write
    /// returns — the append-before-ack discipline), compacts into a
    /// snapshot on the policy's cadence, and **recovers from existing
    /// state at startup**: snapshot plus the valid WAL prefix are
    /// replayed (a torn tail from a `kill -9` is truncated, a corrupt
    /// frame mid-log panics with a diagnostic), the incarnation number
    /// is bumped and persisted, and peers are asked for the missing
    /// update delta. Pair with [`LiveSystem::reliable`].
    pub fn durability(mut self, policy: DurabilityPolicy, dir: impl Into<PathBuf>) -> Self {
        self.cfg.durability = Some(policy);
        self.durability_dir = Some(dir.into());
        self
    }

    /// Installs the lossy-channel shim: every message is independently
    /// dropped with probability `loss` (rolls are derived from `seed`, so
    /// the drop pattern over send order is reproducible). Pair with
    /// [`LiveSystem::reliable`] — raw protocols over lossy channels block
    /// forever and surface as per-operation timeouts.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0`.
    pub fn lossy(mut self, loss: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss probability must be in [0, 1)");
        self.loss = loss;
        self.seed = seed;
        self
    }

    /// Enables the reliable-delivery session layer
    /// ([`mc_proto::session`]) on every node: per-link sequence numbers,
    /// cumulative acks, and tick-driven retransmission — the same state
    /// machines the simulator exercises, glued to wall-clock time.
    pub fn reliable(mut self, reliable: bool) -> Self {
        self.cfg.reliable = reliable;
        self
    }

    /// Enables (or disables) batched update propagation. Buffered writes
    /// are flushed before every synchronization send, at the size limit,
    /// and once the wall-clock [`BatchPolicy::max_delay_micros`] window
    /// elapses (checked on operation entry and whenever a process is
    /// about to block).
    pub fn batching(mut self, batch: Option<BatchPolicy>) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Partitions the address space into shards with interest-based
    /// partial replication (the live twin of the simulator's
    /// `System::sharding`): each process subscribes to the shards in
    /// its interest set, updates multicast only to subscribers, and a
    /// first touch outside the set either performs a directory
    /// round-trip ([`ShardConfig::dynamic`]) or is a program error.
    ///
    /// # Panics
    ///
    /// [`LiveSystem::run`] panics if the interest table's length does
    /// not match the process count, or if the program uses locks or
    /// barriers (unsupported with sharding).
    pub fn sharding(mut self, sharding: Option<ShardConfig>) -> Self {
        self.cfg = self.cfg.with_sharding(sharding);
        self
    }

    /// Presizes every replica's store for `locations` locations.
    pub fn locations(mut self, locations: usize) -> Self {
        self.cfg.locations = locations;
        self
    }

    /// Assigns one consistency-lattice point per process. The substrate
    /// mode is re-derived from the assignment and each process's reads
    /// follow its own point's policy — the live twin of the simulator's
    /// `System::models`.
    pub fn models(mut self, models: mc_model::ModelAssignment) -> Self {
        self.cfg = self.cfg.with_models(models);
        self
    }

    /// Selects the lock-propagation variant.
    pub fn lock_propagation(mut self, p: LockPropagation) -> Self {
        self.cfg.lock_propagation = p;
        self
    }

    /// Enables history recording.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Enables structured event tracing: every message send (and lossy
    /// drop) is recorded on a shared tracer, keyed by wall-clock time
    /// since the run started, and returned on
    /// [`LiveOutcome::trace`].
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Distributes managers over `shards` nodes.
    pub fn manager_shards(mut self, shards: usize) -> Self {
        self.cfg = self.cfg.with_manager_shards(shards);
        self
    }

    /// Restricts a barrier to a process subset.
    pub fn barrier_group(mut self, barrier: BarrierId, group: Vec<ProcId>) -> Self {
        self.cfg = self.cfg.with_barrier_group(barrier, group);
        self
    }

    /// Sets the blocked-operation timeout (default 10 s); a process that
    /// waits longer panics with a diagnostic, surfacing as
    /// [`LiveError::ProcPanicked`].
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds the next process.
    pub fn spawn<F>(&mut self, f: F) -> ProcId
    where
        F: FnOnce(&mut LiveCtx) + Send + 'static,
    {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Box::new(f));
        id
    }

    /// Runs all processes to completion on real threads.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::ProcPanicked`] if any process panicked
    /// (including blocked-operation timeouts) and
    /// [`LiveError::Malformed`] if the recorded history fails validation.
    ///
    /// # Panics
    ///
    /// Panics if more processes were spawned than configured.
    pub fn run(mut self) -> Result<LiveOutcome, LiveError> {
        assert_eq!(
            self.procs.len(),
            self.cfg.nprocs,
            "spawned {} processes but configured {}",
            self.procs.len(),
            self.cfg.nprocs
        );
        let cfg = self.cfg.clone();
        let nnodes = cfg.nnodes();
        let start = Instant::now();

        let mut senders = Vec::with_capacity(nnodes);
        let mut receivers = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let net = Net {
            transport: Arc::new(ChannelTransport::new(senders)),
            messages: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
            loss: self.loss,
            seed: self.seed,
            rolls: Arc::new(AtomicU64::new(0)),
            lost: Arc::new(AtomicU64::new(0)),
            closed_dropped: Arc::new(AtomicU64::new(0)),
            shutting_down: Arc::new(AtomicBool::new(false)),
            tracer: self.trace.then(|| Arc::new(Mutex::new(Tracer::new()))),
            epoch: start,
        };
        let recorder = self.record.then(|| Arc::new(Mutex::new(HistoryBuilder::new(cfg.nprocs))));
        let walc = Arc::new(WalCounters::default());

        // Manager shard threads (the last `manager_shards` nodes).
        let mut manager_handles = Vec::new();
        let mut receivers_iter = receivers.into_iter();
        let mut proc_rx: Vec<Receiver<Wire>> = Vec::new();
        for _ in 0..cfg.nprocs {
            proc_rx.push(receivers_iter.next().expect("receiver per node"));
        }
        for (shard, rx) in receivers_iter.enumerate() {
            let net = net.clone();
            let cfg = cfg.clone();
            let node = cfg.nprocs + shard;
            manager_handles.push(std::thread::spawn(move || run_manager_node(rx, net, cfg, node)));
        }

        // Process threads.
        let (done_tx, done_rx) = unbounded::<u32>();
        let mut proc_handles = Vec::new();
        for (i, f) in self.procs.drain(..).enumerate() {
            let rx = proc_rx.remove(0);
            let opts = NodeConfig {
                proc: ProcId(i as u32),
                cfg: cfg.clone(),
                timeout: self.timeout,
                durability_dir: self.durability_dir.clone(),
            };
            let ctx_net = net.clone();
            let recorder = recorder.clone();
            let done_tx = done_tx.clone();
            let walc = walc.clone();
            proc_handles.push(std::thread::spawn(move || {
                run_proc_node(opts, rx, ctx_net, walc, recorder, f, move || {
                    let _ = done_tx.send(i as u32);
                })
            }));
        }
        drop(done_tx);

        // One done signal per process, however long its program runs;
        // blocked operations are bounded by the per-op timeout (which
        // panics, which still sends done), so this cannot hang.
        let mut finished = 0usize;
        while finished < proc_handles.len() {
            match done_rx.recv() {
                Ok(_) => finished += 1,
                Err(_) => break, // all senders gone: every thread exited
            }
        }
        // From here on, sends may legitimately race closing inboxes
        // (e.g. a retransmission of an already-consumed grant whose ack
        // was lost), so stop treating them as silent losses.
        net.begin_shutdown(nnodes);

        let mut replicas = Vec::new();
        for (i, h) in proc_handles.into_iter().enumerate() {
            match h.join() {
                Ok(replica) => replicas.push(replica),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    return Err(LiveError::ProcPanicked { proc: ProcId(i as u32), message });
                }
            }
        }
        let mut managers: Vec<Manager> = manager_handles
            .into_iter()
            .map(|h| h.join().expect("manager threads do not panic"))
            .collect();

        let history = match recorder {
            None => None,
            Some(rec) => {
                let builder = Arc::try_unwrap(rec)
                    .expect("all recorder handles dropped")
                    .into_inner()
                    .expect("recorder healthy");
                Some(builder.build().map_err(LiveError::Malformed)?)
            }
        };
        let dropped_sends = net.closed_dropped.load(Ordering::SeqCst);
        assert_eq!(
            dropped_sends, 0,
            "messages were silently lost on closed inboxes before shutdown"
        );
        let trace = net.tracer.as_ref().map(|tr| tr.lock().expect("tracer healthy").clone());
        let wal = walc.stats();
        Ok(LiveOutcome {
            history,
            wal,
            messages: net.messages.load(Ordering::Relaxed),
            bytes: net.bytes.load(Ordering::Relaxed),
            lost: net.lost.load(Ordering::Relaxed),
            dropped_sends,
            wall: start.elapsed(),
            trace,
            replicas,
            server: managers.remove(0),
            mode: cfg.mode,
        })
    }
}

/// Opens (and, when prior state exists, recovers) process `proc`'s
/// replica. Returns the replica, the opened disk (durability on only),
/// and whether a recovery happened.
///
/// Recovery order: decode the snapshot, replay the WAL's valid prefix
/// through the normal ingest machinery, truncate a torn tail (the
/// expected `kill -9` residue), bump and persist the incarnation. A
/// corrupt frame *before* the tail is a real integrity failure and
/// panics with a diagnostic rather than silently dropping durable state.
fn open_replica(
    proc: ProcId,
    cfg: &DsmConfig,
    dir: Option<&std::path::Path>,
    walc: &WalCounters,
) -> (Replica, Option<FileDisk>, bool) {
    // Sharded replicas rebuild with the static interest set; WAL replay
    // re-mints own chains and restores dynamic subscriptions.
    let sharded = cfg.sharding.as_ref().filter(|_| cfg.mode.is_replicated());
    let fresh = || {
        let r = Replica::new(proc, cfg.nprocs).with_store_capacity(cfg.locations);
        match sharded {
            Some(sc) => r.with_sharding(sc.nshards, sc.interest[proc.index()].clone()),
            None => r,
        }
    };
    let (Some(_), Some(dir)) = (cfg.durability, dir) else { return (fresh(), None, false) };
    let rdir = dir.join(format!("replica-{}", proc.index()));
    let (snap_bytes, log_bytes) =
        FileDisk::load(&rdir).unwrap_or_else(|e| panic!("{proc}: cannot load {rdir:?}: {e}"));
    let had_state = snap_bytes.is_some() || !log_bytes.is_empty();
    let mut replica = match &snap_bytes {
        Some(b) => match Snapshot::decode(b) {
            Ok(snap) => {
                let r = Replica::from_snapshot(proc, cfg.nprocs, &snap)
                    .with_store_capacity(cfg.locations);
                // Unreachable for sharded runs today (sharded replicas
                // are log-only), kept in lock-step with the simulator.
                match sharded {
                    Some(sc) => r.with_sharding(sc.nshards, sc.interest[proc.index()].clone()),
                    None => r,
                }
            }
            Err(e) => panic!("{proc}: snapshot in {rdir:?} is corrupt: {e}"),
        },
        None => fresh(),
    };
    let (records, tail) = decode_wal(&log_bytes);
    let valid_len = match tail {
        WalTail::Clean => log_bytes.len(),
        WalTail::Torn { at } => at,
        WalTail::Corrupt { at } => {
            // A CRC failure with more frames behind it would mean durable
            // records silently vanish; all observed kill patterns tear
            // only the tail, so refuse anything else loudly.
            panic!("{proc}: wal in {rdir:?} has a corrupt frame at byte {at}")
        }
    };
    if valid_len < log_bytes.len() {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(rdir.join("wal.log"))
            .unwrap_or_else(|e| panic!("{proc}: cannot reopen wal: {e}"));
        f.set_len(valid_len as u64).unwrap_or_else(|e| panic!("{proc}: cannot truncate wal: {e}"));
        f.sync_all().unwrap_or_else(|e| panic!("{proc}: cannot sync truncated wal: {e}"));
    }
    walc.replayed.fetch_add(records.len() as u64, Ordering::Relaxed);
    for rec in records {
        replica.replay_record(rec, cfg.mode);
    }
    let mut disk = FileDisk::open(&rdir).unwrap_or_else(|e| panic!("{proc}: cannot open wal: {e}"));
    if had_state {
        replica.incarnation += 1;
        let frame = WalRecord::Incarnation { incarnation: replica.incarnation }.encode();
        disk.append(&frame).and_then(|()| disk.sync()).unwrap_or_else(|e| {
            panic!("{proc}: cannot persist incarnation: {e}");
        });
        walc.appends.fetch_add(1, Ordering::Relaxed);
        walc.synced.fetch_add(1, Ordering::Relaxed);
        walc.fsyncs.fetch_add(1, Ordering::Relaxed);
        walc.recoveries.fetch_add(1, Ordering::Relaxed);
    }
    (replica, Some(disk), had_state)
}

/// Per-node options for [`run_proc_node`] — everything a process node
/// needs besides its inbox, the shared net, and its program body.
pub struct NodeConfig {
    /// Which process this node runs.
    pub proc: ProcId,
    /// The shared protocol configuration.
    pub cfg: DsmConfig,
    /// Blocked-operation timeout (panics past it).
    pub timeout: Duration,
    /// Durability root; each process keeps its WAL under
    /// `dir/replica-{i}`.
    pub durability_dir: Option<PathBuf>,
}

/// One process node's whole life, transport-agnostic: open (and maybe
/// recover) the replica, run the program body, flush, signal `done`,
/// then keep ingesting — retransmitting on session ticks — until the
/// shutdown signal, and fsync on the way out. Both the in-process
/// executor and the TCP runtime (`mc-net`) call this; only the
/// [`Transport`] behind `net` and the inbox feeding `rx` differ.
pub fn run_proc_node(
    opts: NodeConfig,
    rx: Receiver<Wire>,
    net: Net,
    walc: Arc<WalCounters>,
    recorder: Option<Arc<Mutex<HistoryBuilder>>>,
    body: impl FnOnce(&mut LiveCtx),
    done: impl FnOnce(),
) -> Replica {
    let NodeConfig { proc, cfg, timeout, durability_dir } = opts;
    let i = proc.index();
    let (replica, disk, recovered) = open_replica(proc, &cfg, durability_dir.as_deref(), &walc);
    // Seed multicast routes from the static interest sets; dynamic
    // joiners merge in from SubAck/SubNotify and recovery answers,
    // exactly as in the simulator.
    let shard_routes: Vec<Vec<ProcId>> =
        match cfg.sharding.as_ref().filter(|_| cfg.mode.is_replicated()) {
            None => Vec::new(),
            Some(sc) => (0..sc.nshards)
                .map(|s| {
                    (0..cfg.nprocs as u32)
                        .map(ProcId)
                        .filter(|&q| q.index() != i && sc.subscribed(q, s))
                        .collect()
                })
                .collect(),
        };
    let mut session = cfg.reliable.then(|| Session::new(SessionConfig::default()));
    if let Some(s) = &mut session {
        // The reborn incarnation fences this node's session epochs above
        // anything a previous life could have acked (matters once
        // transports outlive processes).
        s.set_base_epoch(nid(i), replica.incarnation);
    }
    let mut ctx = LiveCtx {
        proc,
        replica,
        session,
        cfg,
        inbox: rx,
        net,
        held: HashMap::new(),
        granted: HashMap::new(),
        flush_acks: 0,
        flush_waiters: Vec::new(),
        barrier_next: HashMap::new(),
        barrier_released: HashMap::new(),
        sc_resp: None,
        batch: LiveBatch::default(),
        link_clock_out: HashMap::new(),
        link_clock_in: HashMap::new(),
        recorder,
        timeout,
        disk,
        records_since_snap: 0,
        last_snap: Instant::now(),
        recover_seen: HashMap::new(),
        recover_pushed: HashMap::new(),
        shard_routes,
        shard_out: HashMap::new(),
        shard_since: None,
        walc,
    };
    if recovered {
        // Ask every peer for the updates this node's disk never made
        // durable; responses arrive during (or after) the program and
        // unblock its read gates. Sharded recovery ships the per-shard
        // applied summary instead of the global vector — peers answer
        // only for the shards they share.
        let req = if ctx.sharded() {
            Msg::ShardRecoverReq {
                proc: ctx.proc,
                incarnation: ctx.replica.incarnation,
                applied: ctx.replica.shards().expect("sharded").applied_summary(),
            }
        } else {
            Msg::RecoverReq {
                proc: ctx.proc,
                incarnation: ctx.replica.incarnation,
                applied: ctx.replica.applied.clone(),
            }
        };
        for peer in 0..ctx.cfg.nprocs {
            if peer != i {
                // Raw: recovery must not ride the sessions it is in the
                // middle of re-fencing.
                ctx.net.send(i, peer, req.clone());
            }
        }
    }
    // The done signal must fire even on panic (op timeouts panic by
    // design): the coordinator waits for exactly one signal per process,
    // with no wall-clock limit of its own — long-running programs are
    // fine.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
    // Push out any still-buffered writes before signalling done: the
    // coordinator broadcasts shutdown once every done signal is in, and
    // sends racing that broadcast may land after a peer's ingest loop
    // has exited.
    ctx.flush_updates();
    done();
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
    // Keep ingesting until shutdown so the replica converges and other
    // nodes' sends never hit a closed channel. With the session layer
    // on, keep retransmitting too: a peer may still be blocked on a
    // payload the network ate.
    loop {
        let wire = if ctx.session.is_some() {
            match ctx.inbox.recv_timeout(RETX_TICK) {
                Ok(w) => Some(w),
                Err(RecvTimeoutError::Timeout) => {
                    ctx.retransmit();
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => None,
            }
        } else {
            ctx.inbox.recv().ok()
        };
        match wire {
            Some(Wire::Proto { from, msg }) => ctx.receive(from, msg),
            Some(Wire::Shutdown) | None => break,
        }
    }
    // Final fsync: a clean shutdown leaves no staged records behind
    // (only a kill can lose appended work).
    ctx.wal_sync();
    ctx.replica
}

/// One manager shard: receive (through the session filter), dispatch to
/// the shared [`Manager`] state machine, forward its outbox — and, with
/// the session layer on, retransmit unacknowledged grants/releases on
/// wall-clock ticks. Transport-agnostic for the same reason as
/// [`run_proc_node`].
pub fn run_manager_node(rx: Receiver<Wire>, net: Net, cfg: DsmConfig, node: NodeId) -> Manager {
    let mut manager = Manager::new(cfg.nprocs);
    let mut session = cfg.reliable.then(|| Session::new(SessionConfig::default()));
    loop {
        let wire = if session.is_some() {
            match rx.recv_timeout(RETX_TICK) {
                Ok(w) => Some(w),
                Err(RecvTimeoutError::Timeout) => {
                    sess_retransmit(&net, &mut session, node);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => None,
            }
        } else {
            rx.recv().ok()
        };
        match wire {
            Some(Wire::Proto { from, msg }) => {
                for msg in sess_receive(&net, &mut session, node, from, msg) {
                    let out = match msg {
                        Msg::LockReq { proc, lock, mode } => {
                            manager.lock_request(proc, lock, mode, &cfg)
                        }
                        Msg::LockRel { proc, lock, knowledge, own_count, dirty, .. } => {
                            manager.lock_release(proc, lock, knowledge, own_count, dirty, &cfg)
                        }
                        Msg::BarrierArrive { proc, barrier, round, knowledge } => {
                            manager.barrier_arrive(proc, barrier, round, knowledge, &cfg)
                        }
                        Msg::ScRead { proc, loc } => manager.sc_read(proc, loc),
                        Msg::ScWrite { writer, loc, payload } => {
                            manager.sc_write(writer, loc, payload)
                        }
                        Msg::ScAwait { proc, loc, value } => manager.sc_await(proc, loc, value),
                        Msg::SubReq { proc, shard } => manager.sub_req(proc, shard, &cfg),
                        other => unreachable!("manager received {other:?}"),
                    };
                    for (proc, msg) in out {
                        sess_send(&net, &mut session, node, proc.index(), msg);
                    }
                }
            }
            Some(Wire::Shutdown) | None => return manager,
        }
    }
}

/// The per-process handle of the live executor: the same operation
/// vocabulary as the simulator-backed `Ctx`.
pub struct LiveCtx {
    proc: ProcId,
    cfg: DsmConfig,
    replica: Replica,
    session: Option<Session>,
    inbox: Receiver<Wire>,
    net: Net,
    held: HashMap<LockId, LockMode>,
    granted: HashMap<LockId, GrantInfo>,
    flush_acks: usize,
    flush_waiters: Vec<(ProcId, u32)>,
    barrier_next: HashMap<BarrierId, u32>,
    barrier_released: HashMap<(BarrierId, u32), VClock>,
    sc_resp: Option<Msg>,
    batch: LiveBatch,
    /// Per destination process: the dependency clock as last sent on that
    /// link (delta-compression shadow copy, sender side).
    link_clock_out: HashMap<NodeId, VClock>,
    /// Per source process: the dependency clock as last received on that
    /// link (delta-compression shadow copy, receiver side).
    link_clock_in: HashMap<NodeId, VClock>,
    recorder: Option<Arc<Mutex<HistoryBuilder>>>,
    timeout: Duration,
    /// The write-ahead log (durability on only).
    disk: Option<FileDisk>,
    /// WAL records since the last snapshot (count-based cadence).
    records_since_snap: u32,
    /// When the last snapshot was installed (wall-clock cadence).
    last_snap: Instant,
    /// Highest reborn incarnation already answered, per peer — dedups
    /// recovery requests.
    recover_seen: HashMap<ProcId, u32>,
    /// High-water of own-write sequences already pushed back to each
    /// reborn peer (chunked recovery responses repeat `seen`; the
    /// push-back must not repeat with them).
    recover_pushed: HashMap<ProcId, u32>,
    /// Multicast routes (sharding only): `shard_routes[s]` lists the
    /// peers this node knows to subscribe to shard `s` (self excluded,
    /// kept sorted for deterministic multicast order).
    shard_routes: Vec<Vec<ProcId>>,
    /// Per-shard outgoing buffers (sharding with batching).
    shard_out: HashMap<u32, LiveShardBatch>,
    /// When a shard buffer last became non-empty (one wall-clock flush
    /// window shared across shards, like the simulator's one timer).
    shard_since: Option<Instant>,
    walc: Arc<WalCounters>,
}

impl fmt::Debug for LiveCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveCtx").field("proc", &self.proc).finish()
    }
}

impl LiveCtx {
    /// This process's id.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    fn push(&mut self, kind: OpKind) {
        if let Some(rec) = &self.recorder {
            rec.lock().expect("recorder healthy").push(self.proc, kind);
        }
    }

    /// Appends one WAL record (staged until the next fsync).
    fn wal_append(&mut self, rec: &WalRecord) {
        let Some(disk) = &mut self.disk else { return };
        disk.append(&rec.encode())
            .unwrap_or_else(|e| panic!("{}: wal append failed: {e}", self.proc));
        self.walc.appends.fetch_add(1, Ordering::Relaxed);
        self.records_since_snap += 1;
    }

    /// fsyncs the WAL (no-op when durability is off or nothing staged).
    fn wal_sync(&mut self) {
        let Some(disk) = &mut self.disk else { return };
        if disk.staged_records() == 0 {
            return;
        }
        let n = disk.sync().unwrap_or_else(|e| panic!("{}: wal sync failed: {e}", self.proc));
        if n > 0 {
            self.walc.synced.fetch_add(n, Ordering::Relaxed);
            self.walc.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Installs a compacted snapshot once either cadence (record count or
    /// wall-clock interval) is due. fsyncs first: compaction must never
    /// discard staged records.
    fn maybe_snapshot(&mut self) {
        let Some(policy) = self.cfg.durability else { return };
        // Snapshots do not capture per-shard clocks, own chains, or
        // subscriptions: sharded replicas stay log-only, and recovery
        // replays the full WAL.
        if self.sharded() {
            return;
        }
        if self.disk.is_none() || self.records_since_snap == 0 {
            return;
        }
        let due = self.records_since_snap >= policy.snapshot_every
            || self.last_snap.elapsed() >= Duration::from_micros(policy.snapshot_interval_micros);
        if !due {
            return;
        }
        self.wal_sync();
        let me = self.proc.index();
        let watermarks = match &mut self.session {
            None => Vec::new(),
            Some(s) => (0..self.cfg.nprocs)
                .filter(|&j| j != me)
                .map(|j| (ProcId(j as u32), s.receiver(nid(j), nid(me)).delivered()))
                .collect(),
        };
        let snap = self.replica.to_snapshot(watermarks);
        self.disk
            .as_mut()
            .expect("checked above")
            .install_snapshot(&snap.encode())
            .unwrap_or_else(|e| panic!("{}: snapshot install failed: {e}", self.proc));
        self.records_since_snap = 0;
        self.last_snap = Instant::now();
        self.walc.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Sends a protocol message, through the session layer when it is on.
    fn send(&mut self, to: NodeId, msg: Msg) {
        // Group commit: staged own-write records must hit disk before any
        // message that could let a peer observe (and act on) them leaves
        // this node. `wal_sync` no-ops when nothing is staged.
        if self.cfg.durability.is_some_and(|p| p.group_commit) {
            self.wal_sync();
        }
        sess_send(&self.net, &mut self.session, self.proc.index(), to, msg);
    }

    /// Filters one arriving wire message through the session layer and
    /// applies whatever is deliverable.
    fn receive(&mut self, from: NodeId, msg: Msg) {
        let me = self.proc.index();
        for inner in sess_receive(&self.net, &mut self.session, me, from, msg) {
            self.process(inner);
        }
    }

    /// Retransmits every unacknowledged session payload.
    fn retransmit(&mut self) {
        sess_retransmit(&self.net, &mut self.session, self.proc.index());
    }

    /// Survivor-side session glue for a reborn peer (the live twin of
    /// the simulator's recovery reset, `dsm.rs`): the link toward the
    /// reborn node is reset into a fresh, higher epoch — its newborn
    /// receiver would otherwise buffer forever behind sequence numbers
    /// that died with the old incarnation. Non-update payloads are
    /// re-wrapped and resent; update-class payloads are dropped (their
    /// content travels in the recovery answer, with full dependency
    /// vectors). The delta-compression shadow clocks for the link are
    /// cleared on this side to match the reborn node's empty ones.
    fn reset_reborn_link(&mut self, reborn: ProcId) {
        let me = self.proc.index();
        if let Some(s) = &mut self.session {
            let wire = s.reset_sender_with(nid(me), nid(reborn.index()), |m| {
                !matches!(
                    m,
                    Msg::Update { .. }
                        | Msg::UpdateBatch { .. }
                        | Msg::RecoverResp { .. }
                        | Msg::ShardUpdate { .. }
                        | Msg::ShardUpdateBatch { .. }
                        | Msg::ShardRecoverResp { .. }
                )
            });
            for m in wire {
                self.net.send(me, reborn.index(), m);
            }
        }
        self.link_clock_out.remove(&reborn.index());
        self.link_clock_in.remove(&reborn.index());
    }

    /// Whether sharded interest-based replication is active (a shard
    /// map on a replicated mode).
    fn sharded(&self) -> bool {
        self.cfg.sharding.is_some() && self.cfg.mode.is_replicated()
    }

    /// Fsync before an observation returns. Remote ingests are staged
    /// (appended, unsynced) until some local read or await could expose
    /// them to the program; past that point a crash must not un-happen
    /// them, or a surviving reader would watch its own history regress.
    fn observe_sync(&mut self) {
        if self.cfg.durability.is_some() {
            self.wal_sync();
        }
    }

    /// Sends `msg` to every peer this node knows to subscribe to
    /// `shard` (subscriber-only routing — the point of sharding).
    fn multicast_shard(&mut self, shard: u32, msg: Msg) {
        let peers = self.shard_routes[shard as usize].clone();
        for q in peers {
            self.send(q.index(), msg.clone());
        }
    }

    /// Records that `q` subscribes to `shard` (routes never list this
    /// node's own process; insertion keeps them sorted).
    fn add_shard_route(&mut self, shard: u32, q: ProcId) {
        if q == self.proc {
            return;
        }
        let routes = &mut self.shard_routes[shard as usize];
        if let Err(i) = routes.binary_search(&q) {
            routes.insert(i, q);
        }
    }

    /// Gates a sharded access to `loc` on a subscription to its shard.
    /// A first touch outside the interest set blocks on a directory
    /// round-trip when the dynamic fallback is enabled, and is a
    /// program error otherwise.
    fn shard_gate(&mut self, loc: Loc) {
        if !self.sharded() {
            return;
        }
        let (shard, dynamic) = {
            let sc = self.cfg.sharding.as_ref().expect("sharded");
            (sc.shard_of(loc), sc.dynamic)
        };
        if self.replica.shards().expect("sharded").subscribed(shard) {
            return;
        }
        assert!(
            dynamic,
            "{} touches {loc} (shard {shard}) outside its interest set \
             and the dynamic subscribe-on-first-touch fallback is off",
            self.proc
        );
        self.send(
            self.cfg.manager_node().index(),
            Msg::SubReq { proc: self.proc, shard: shard as u32 },
        );
        while !self.replica.shards().expect("sharded").subscribed(shard) {
            self.step("shard subscription");
        }
    }

    /// Applies one incoming protocol message to local state.
    fn process(&mut self, msg: Msg) {
        match msg {
            Msg::Update { writer, loc, payload, deps } => {
                // Recovery can re-deliver updates the durable log already
                // holds (a RecoverResp overlapping an in-flight Update);
                // an already-applied sequence is a ghost, not new work.
                if self.cfg.durability.is_some() && writer.seq <= self.replica.applied[writer.proc]
                {
                    return;
                }
                if self.cfg.durability.is_some() {
                    let rec = WalRecord::Ingest {
                        writer,
                        loc,
                        payload: payload.clone(),
                        deps: deps.clone(),
                    };
                    self.wal_append(&rec);
                    self.maybe_snapshot();
                }
                if self.replica.ingest(writer, loc, payload, deps, self.cfg.mode) {
                    self.drain_flush_waiters();
                }
            }
            Msg::UpdateBatch { proc, first_seq, upto, entries, delta, ack } => {
                // A piggybacked ack covers the reverse link, sparing a
                // standalone SessAck's information (the standalone still
                // travels; cumulative acks are idempotent).
                if let Some((acked, epoch)) = ack {
                    if let Some(s) = &mut self.session {
                        let scfg = s.cfg;
                        s.sender(nid(self.proc.index()), nid(proc.index()))
                            .on_ack(acked, epoch, &scfg);
                    }
                }
                // Reconstruct the full dependency clock from the
                // per-link delta against this link's shadow copy —
                // before the ghost check, so even a skipped batch keeps
                // the shadow in lock-step with the sender's.
                let deps = delta.map(|dv| {
                    let prev = self
                        .link_clock_in
                        .entry(proc.index())
                        .or_insert_with(|| VClock::new(self.cfg.nprocs));
                    for (q, c) in dv {
                        prev.set(q, c);
                    }
                    prev.clone()
                });
                // Ghost batch after recovery: the content is already
                // durable (or covered by a RecoverResp); batch windows
                // never partially overlap, so a whole-batch skip is
                // exact.
                if self.cfg.durability.is_some() && upto <= self.replica.applied[proc] {
                    return;
                }
                if self.cfg.durability.is_some() {
                    let rec = WalRecord::IngestBatch {
                        proc,
                        first_seq,
                        upto,
                        entries: entries.to_vec(),
                        deps: deps.clone(),
                    };
                    self.wal_append(&rec);
                    self.maybe_snapshot();
                }
                if self.replica.ingest_batch(proc, first_seq, upto, entries, deps, self.cfg.mode) {
                    self.drain_flush_waiters();
                }
            }
            Msg::RecoverReq { proc, incarnation, applied } => {
                // A reborn peer asks for whatever it never made durable.
                if self.recover_seen.get(&proc).is_some_and(|&inc| incarnation <= inc) {
                    return;
                }
                self.recover_seen.insert(proc, incarnation);
                // Buffered writes are part of the history the delta is
                // computed against — flush so the two agree.
                self.flush_updates();
                self.reset_reborn_link(proc);
                self.recover_pushed.remove(&proc);
                let seen = self.replica.applied[proc];
                // One response per dependency-homogeneous chunk: a single
                // batch gated on its last member's vector deadlocks when
                // two survivors' deltas cross-reference each other's
                // writes (see `Replica::delta_chunks`). Every chunk
                // carries `seen` — the push-back dedups on its side.
                let chunks = self.replica.delta_chunks(applied[self.proc]);
                if chunks.is_empty() {
                    let after = applied[self.proc];
                    self.send(
                        proc.index(),
                        Msg::RecoverResp {
                            proc: self.proc,
                            first_seq: after + 1,
                            upto: after,
                            entries: Vec::new(),
                            deps: None,
                            seen,
                        },
                    );
                } else {
                    for (first_seq, upto, entries, deps) in chunks {
                        self.send(
                            proc.index(),
                            Msg::RecoverResp {
                                proc: self.proc,
                                first_seq,
                                upto,
                                entries,
                                deps,
                                seen,
                            },
                        );
                    }
                }
            }
            Msg::RecoverResp { proc, first_seq, upto, entries, deps, seen } => {
                if upto >= first_seq && first_seq > self.replica.applied[proc] {
                    let rec = WalRecord::IngestBatch {
                        proc,
                        first_seq,
                        upto,
                        entries: entries.clone(),
                        deps: deps.clone(),
                    };
                    self.wal_append(&rec);
                    self.maybe_snapshot();
                    if self.replica.ingest_batch(
                        proc,
                        first_seq,
                        upto,
                        entries.into(),
                        deps,
                        self.cfg.mode,
                    ) {
                        self.drain_flush_waiters();
                    }
                }
                // Push back the suffix of own writes the peer has not
                // seen — its durable log may be behind this node's.
                // Chunked at dependency boundaries like the recovery
                // delta, and high-watered: one RecoverResp arrives per
                // chunk from that peer and each repeats `seen`, so the
                // suffix must be pushed exactly once.
                let pushed = self.recover_pushed.get(&proc).copied().unwrap_or(0);
                let chunks = self.replica.delta_chunks(seen.max(pushed));
                if let Some(&(_, last_upto, _, _)) = chunks.last() {
                    self.recover_pushed.insert(proc, last_upto);
                }
                for (fs, u, es, d) in chunks {
                    let delta = d.as_ref().map(|deps| {
                        let prev = self
                            .link_clock_out
                            .entry(proc.index())
                            .or_insert_with(|| VClock::new(self.cfg.nprocs));
                        let changed: Vec<(ProcId, u32)> = (0..self.cfg.nprocs as u32)
                            .map(ProcId)
                            .filter(|&q| deps[q] != prev[q])
                            .map(|q| (q, deps[q]))
                            .collect();
                        *prev = deps.clone();
                        changed
                    });
                    let msg = Msg::UpdateBatch {
                        proc: self.proc,
                        first_seq: fs,
                        upto: u,
                        entries: es.into(),
                        delta,
                        ack: None,
                    };
                    self.send(proc.index(), msg);
                }
            }
            Msg::Flush { from_proc, upto } => {
                if self.replica.applied[from_proc] >= upto {
                    self.send(from_proc.index(), Msg::FlushAck);
                } else {
                    self.flush_waiters.push((from_proc, upto));
                }
            }
            Msg::FlushAck => self.flush_acks += 1,
            Msg::LockGrant { lock, grant } => {
                self.granted.insert(lock, grant);
            }
            Msg::BarrierRelease { barrier, round, knowledge } => {
                self.barrier_released.insert((barrier, round), knowledge);
            }
            other @ (Msg::ScReadResp { .. } | Msg::ScWriteAck | Msg::ScAwaitResp { .. }) => {
                self.sc_resp = Some(other);
            }
            Msg::ShardUpdate { writer, loc, payload, prev, deps } => {
                let shard = self.replica.shards().expect("sharded").shard_of(loc);
                if self.cfg.durability.is_some() {
                    // Recovery ghost: content already on disk (or covered
                    // by a ShardRecoverResp) — skip the re-log and
                    // re-apply.
                    let have =
                        self.replica.shards().expect("sharded").applied(shard).get(writer.proc);
                    if writer.seq <= have {
                        return;
                    }
                    let rec = WalRecord::IngestSharded {
                        writer,
                        loc,
                        payload: payload.clone(),
                        prev,
                        deps: deps.clone(),
                    };
                    self.wal_append(&rec);
                }
                self.replica.ingest_sharded(writer, loc, payload, prev, deps, self.cfg.mode);
            }
            Msg::ShardUpdateBatch { proc, shard, prev, upto, entries, deps } => {
                if self.cfg.durability.is_some() {
                    let have =
                        self.replica.shards().expect("sharded").applied(shard as usize).get(proc);
                    if upto <= have {
                        return;
                    }
                    let rec = WalRecord::IngestShardChain {
                        proc,
                        shard,
                        prev,
                        upto,
                        entries: entries.to_vec(),
                        deps: deps.clone(),
                        trim: false,
                    };
                    self.wal_append(&rec);
                }
                self.replica.ingest_shard_chain(
                    proc,
                    shard,
                    prev,
                    upto,
                    entries,
                    deps,
                    self.cfg.mode,
                    false,
                );
            }
            Msg::SubAck { shard, subs } => {
                // Persist the subscription before any access can depend
                // on it: replay must filter dependency triples with the
                // same interest set the replica had live.
                if self.replica.shard_subscribe(shard as usize) && self.cfg.durability.is_some() {
                    self.wal_append(&WalRecord::Subscribe { shard });
                    self.wal_sync();
                }
                for q in subs {
                    self.add_shard_route(shard, q);
                }
                // The first-touch operation retries in its gate loop.
            }
            Msg::SubNotify { shard, proc } => {
                // A new subscriber joined: route future updates to it
                // and push our own write suffix for the shard directly,
                // so the join window closes without third-party state.
                // One update per write — an atomic chain can deadlock
                // against another parked chain whose dependency triples
                // point back into this shard.
                self.add_shard_route(shard, proc);
                for (writer, loc, payload, prev, deps) in
                    self.replica.shard_updates_after(&[(shard, 0)])
                {
                    self.send(proc.index(), Msg::ShardUpdate { writer, loc, payload, prev, deps });
                }
            }
            Msg::ShardRecoverReq { proc: reborn, incarnation, applied } => {
                if self.recover_seen.get(&reborn).is_some_and(|&inc| incarnation <= inc) {
                    return;
                }
                self.recover_seen.insert(reborn, incarnation);
                // Buffered shard batches are already in our durable own
                // chains; flush so the recovery delta covers them.
                self.flush_updates();
                self.reset_reborn_link(reborn);
                // Answer once per shard we share. The triples' shard ids
                // double as the reborn's subscription set (zeros kept),
                // so this also re-learns a dynamic subscriber's routes.
                // Each answer carries only the watermark metadata (the
                // push-back trigger); the write suffix itself follows as
                // individual ShardUpdates interleaved across shards in
                // global sequence order — per-shard atomic chains with
                // mutual cross-shard triples would park against each
                // other forever on a reborn replica that lost both.
                let mut shards: Vec<u32> = applied.iter().map(|&(s, _, _)| s).collect();
                shards.dedup();
                let mut wants = Vec::new();
                for s in shards {
                    if !self.replica.shards().expect("sharded").subscribed(s as usize) {
                        continue;
                    }
                    self.add_shard_route(s, reborn);
                    let after = applied
                        .iter()
                        .find(|&&(ds, q, _)| ds == s && q == self.proc)
                        .map_or(0, |&(_, _, c)| c);
                    let seen =
                        self.replica.shards().expect("sharded").applied(s as usize).get(reborn);
                    let me = self.proc;
                    self.send(
                        reborn.index(),
                        Msg::ShardRecoverResp {
                            proc: me,
                            shard: s,
                            prev: after,
                            upto: after,
                            entries: Vec::new(),
                            deps: Vec::new(),
                            seen,
                        },
                    );
                    wants.push((s, after));
                }
                for (writer, loc, payload, prev, deps) in self.replica.shard_updates_after(&wants) {
                    self.send(
                        reborn.index(),
                        Msg::ShardUpdate { writer, loc, payload, prev, deps },
                    );
                }
            }
            Msg::ShardRecoverResp { proc, shard, prev, upto, entries, deps, seen } => {
                // The responder subscribes to the shard, or it would not
                // answer for it — merge the route (recovery re-learning,
                // and the join-backfill path where it is already known).
                self.add_shard_route(shard, proc);
                let have =
                    self.replica.shards().expect("sharded").applied(shard as usize).get(proc);
                if upto > have {
                    if self.cfg.durability.is_some() {
                        let rec = WalRecord::IngestShardChain {
                            proc,
                            shard,
                            prev,
                            upto,
                            entries: entries.clone(),
                            deps: deps.clone(),
                            trim: true,
                        };
                        self.wal_append(&rec);
                    }
                    self.replica.ingest_shard_chain(
                        proc,
                        shard,
                        prev,
                        upto,
                        entries.into(),
                        deps,
                        self.cfg.mode,
                        true,
                    );
                }
                // Push back our own suffix the responder has not seen,
                // one update per write for the same acyclicity reason
                // as the recovery answers themselves.
                for (writer, loc, payload, prev, deps) in
                    self.replica.shard_updates_after(&[(shard, seen)])
                {
                    self.send(proc.index(), Msg::ShardUpdate { writer, loc, payload, prev, deps });
                }
            }
            other => unreachable!("replica received {other:?}"),
        }
    }

    fn drain_flush_waiters(&mut self) {
        let waiters = std::mem::take(&mut self.flush_waiters);
        for (fp, upto) in waiters {
            if self.replica.applied[fp] >= upto {
                self.send(fp.index(), Msg::FlushAck);
            } else {
                self.flush_waiters.push((fp, upto));
            }
        }
    }

    /// Handles all already-delivered messages without blocking, then
    /// flushes the outgoing batch if its wall-clock window has elapsed —
    /// the live twin of the simulator's flush timer, checked on every
    /// operation entry.
    fn drain(&mut self) {
        while let Ok(wire) = self.inbox.try_recv() {
            match wire {
                Wire::Proto { from, msg } => self.receive(from, msg),
                Wire::Shutdown => unreachable!("shutdown during the program"),
            }
        }
        self.maybe_flush_aged();
    }

    /// Blocks until one more message arrives and handles it. With the
    /// session layer on, waits in [`RETX_TICK`] slices, retransmitting
    /// unacknowledged payloads between them.
    ///
    /// # Panics
    ///
    /// Panics (with a description) after the configured timeout — the
    /// live executor's deadlock detector.
    fn step(&mut self, waiting_for: &str) {
        // About to park: never sit on buffered writes another process
        // might be waiting for — there is no background timer thread, so
        // blocking is the flush point (the sim's timer fires within
        // `max_delay_micros`; parking flushes at least that eagerly).
        self.flush_updates();
        let deadline = Instant::now() + self.timeout;
        loop {
            let wait = if self.session.is_some() {
                RETX_TICK.min(deadline.saturating_duration_since(Instant::now()))
            } else {
                self.timeout
            };
            match self.inbox.recv_timeout(wait) {
                Ok(Wire::Proto { from, msg }) => return self.receive(from, msg),
                Ok(Wire::Shutdown) => {
                    panic!("{} received shutdown while waiting for {waiting_for}", self.proc)
                }
                Err(RecvTimeoutError::Timeout) if Instant::now() < deadline => {
                    self.retransmit();
                }
                Err(_) => {
                    // The session dump is the post-mortem for stuck
                    // clusters: which links stopped acking, and where.
                    panic!(
                        "{} timed out after {:?} waiting for {waiting_for} \
                         (applied={:?} pending={} links={:?})",
                        self.proc,
                        self.timeout,
                        self.replica.applied,
                        self.replica.pending_len(),
                        self.session.as_ref().map(|s| s.debug_links()),
                    )
                }
            }
        }
    }

    fn broadcast_update(&mut self, msg: Msg) {
        for i in 0..self.cfg.nprocs {
            if i != self.proc.index() {
                self.send(i, msg.clone());
            }
        }
    }

    fn do_write(&mut self, loc: Loc, payload: UpdatePayload) -> WriteId {
        self.drain();
        if self.cfg.mode == Mode::Sc {
            self.replica.applied.tick(self.proc);
            let id = WriteId::new(self.proc, self.replica.applied[self.proc]);
            self.send(self.cfg.manager_node().index(), Msg::ScWrite { writer: id, loc, payload });
            loop {
                match self.sc_resp.take() {
                    Some(Msg::ScWriteAck) => return id,
                    Some(other) => unreachable!("expected write ack, got {other:?}"),
                    None => self.step("SC write ack"),
                }
            }
        }
        if self.sharded() {
            self.shard_gate(loc);
            return self.do_sharded_write(loc, payload);
        }
        let (id, deps) = self.replica.local_write(loc, payload.clone(), &self.cfg);
        if let Some(policy) = self.cfg.durability {
            let rec = WalRecord::OwnWrite { loc, payload: payload.clone(), deps: deps.clone() };
            self.wal_append(&rec);
            if !policy.group_commit {
                // Append-before-ack: the own write is durable before this
                // operation returns (and before any peer can observe it).
                self.wal_sync();
            }
            // Under group commit the record stays staged; `send` fsyncs
            // before the first message that could let a peer observe it.
            self.maybe_snapshot();
        }
        if let Some(policy) = self.cfg.batch {
            self.buffer_write(loc, payload, id, deps, policy);
        } else {
            self.broadcast_update(Msg::Update { writer: id, loc, payload, deps });
        }
        self.drain_flush_waiters();
        id
    }

    /// Buffers an outgoing update, coalescing with an earlier buffered
    /// write to the same location (`Set` last-write-wins, `Add` sums);
    /// force-flushes at the batch-size limit.
    fn buffer_write(
        &mut self,
        loc: Loc,
        payload: UpdatePayload,
        id: WriteId,
        deps: Option<VClock>,
        policy: BatchPolicy,
    ) {
        let b = &mut self.batch;
        if b.entries.is_empty() {
            b.first_seq = id.seq;
            b.since = Some(Instant::now());
        }
        b.upto = id.seq;
        b.deps = deps;
        let coalesced = match b.last_idx.get(&loc) {
            Some(&idx) => {
                let e = &mut b.entries[idx];
                match (&mut e.payload, &payload) {
                    (UpdatePayload::Set(cur), UpdatePayload::Set(v)) => {
                        *cur = *v;
                        e.writer = id;
                        true
                    }
                    (UpdatePayload::Add(cur), UpdatePayload::Add(d)) => match cur.checked_add(*d) {
                        Some(sum) => {
                            *cur = sum;
                            e.adds.push(id.seq);
                            e.writer = id;
                            true
                        }
                        None => false,
                    },
                    // Kind mismatch: a fresh entry keeps application order.
                    _ => false,
                }
            }
            None => false,
        };
        if !coalesced {
            let adds = match &payload {
                UpdatePayload::Add(_) => vec![id.seq],
                UpdatePayload::Set(_) => Vec::new(),
            };
            b.last_idx.insert(loc, b.entries.len());
            b.entries.push(BatchEntry { loc, payload, writer: id, adds });
        }
        if b.entries.len() >= policy.max_updates {
            self.flush_updates();
        }
    }

    /// The sharded write path: mint through the per-shard chain, log,
    /// and multicast (or buffer) to the shard's subscribers only.
    fn do_sharded_write(&mut self, loc: Loc, payload: UpdatePayload) -> WriteId {
        let (id, prev, deps) = self.replica.sharded_write(loc, payload.clone(), &self.cfg);
        if let Some(policy) = self.cfg.durability {
            let rec =
                WalRecord::OwnWriteSharded { loc, payload: payload.clone(), deps: deps.clone() };
            self.wal_append(&rec);
            if !policy.group_commit {
                self.wal_sync();
            }
        }
        if self.cfg.batch.is_some() {
            self.buffer_shard_write(loc, payload, id, prev, deps);
        } else {
            let shard = self.cfg.sharding.as_ref().expect("sharded").shard_of(loc) as u32;
            self.multicast_shard(shard, Msg::ShardUpdate { writer: id, loc, payload, prev, deps });
        }
        id
    }

    /// Buffers a sharded write into the per-shard outgoing batch,
    /// coalescing like [`LiveCtx::buffer_write`] and sharing one
    /// wall-clock flush window across shards.
    fn buffer_shard_write(
        &mut self,
        loc: Loc,
        payload: UpdatePayload,
        id: WriteId,
        prev: u32,
        deps: Vec<(u32, ProcId, u32)>,
    ) {
        let policy = self.cfg.batch.expect("batching enabled");
        let shard = self.cfg.sharding.as_ref().expect("sharded").shard_of(loc) as u32;
        // Program order crosses shards: this write's dependency triples
        // cover the process's own *buffered* writes in other shards, so
        // two chains buffered concurrently could each require a member
        // of the other and deadlock every receiver. Ship the other
        // shards' buffers first — a chain then only references own
        // writes already on the wire, and coalescing still collapses
        // runs of same-shard writes (the locality case sharding is
        // built around).
        let mut others: Vec<u32> = self
            .shard_out
            .iter()
            .filter(|&(&s, b)| s != shard && !b.entries.is_empty())
            .map(|(&s, _)| s)
            .collect();
        others.sort_unstable();
        for s in others {
            self.flush_shard(s);
        }
        if self.shard_since.is_none() {
            self.shard_since = Some(Instant::now());
        }
        let b = self.shard_out.entry(shard).or_default();
        if b.entries.is_empty() {
            b.prev = prev;
        }
        b.upto = id.seq;
        b.deps = deps;
        let coalesced = match b.last_idx.get(&loc) {
            Some(&idx) => {
                let e = &mut b.entries[idx];
                match (&mut e.payload, &payload) {
                    (UpdatePayload::Set(cur), UpdatePayload::Set(v)) => {
                        *cur = *v;
                        e.writer = id;
                        true
                    }
                    (UpdatePayload::Add(cur), UpdatePayload::Add(d)) => match cur.checked_add(*d) {
                        Some(sum) => {
                            *cur = sum;
                            e.adds.push(id.seq);
                            e.writer = id;
                            true
                        }
                        None => false,
                    },
                    _ => false,
                }
            }
            None => false,
        };
        if !coalesced {
            let adds = match &payload {
                UpdatePayload::Add(_) => vec![id.seq],
                UpdatePayload::Set(_) => Vec::new(),
            };
            b.last_idx.insert(loc, b.entries.len());
            b.entries.push(BatchEntry { loc, payload, writer: id, adds });
        }
        if b.entries.len() >= policy.max_updates {
            self.flush_shard(shard);
        }
    }

    /// Flushes one shard's outgoing buffer to its subscribers.
    fn flush_shard(&mut self, shard: u32) {
        let Some(b) = self.shard_out.get_mut(&shard) else { return };
        if b.entries.is_empty() {
            return;
        }
        // One shared entry buffer for the whole multicast: each
        // subscriber's copy (and any retransmit) bumps a refcount
        // instead of deep-cloning the entries.
        let entries: std::sync::Arc<[BatchEntry]> = std::mem::take(&mut b.entries).into();
        b.last_idx.clear();
        let (prev, upto) = (b.prev, b.upto);
        let deps = std::mem::take(&mut b.deps);
        let me = self.proc;
        self.multicast_shard(
            shard,
            Msg::ShardUpdateBatch { proc: me, shard, prev, upto, entries, deps },
        );
    }

    /// Flushes every non-empty per-shard buffer, in shard order.
    fn flush_shards(&mut self) {
        let mut shards: Vec<u32> =
            self.shard_out.iter().filter(|(_, b)| !b.entries.is_empty()).map(|(&s, _)| s).collect();
        shards.sort_unstable();
        for s in shards {
            self.flush_shard(s);
        }
        self.shard_since = None;
    }

    /// Sends the buffered batch to every peer, delta-compressing the
    /// dependency vector against each link's shadow clock and
    /// piggybacking a cumulative session ack when the session layer has
    /// delivered anything from that peer.
    fn flush_updates(&mut self) {
        if self.cfg.batch.is_none() {
            return;
        }
        if self.sharded() {
            self.flush_shards();
            return;
        }
        if self.batch.entries.is_empty() {
            return;
        }
        // One encoded-once buffer for the fan-out: every peer's
        // message and every session retransmit share it by refcount
        // (the fix for per-peer-per-retransmit deep clones).
        let entries: std::sync::Arc<[BatchEntry]> = std::mem::take(&mut self.batch.entries).into();
        self.batch.last_idx.clear();
        self.batch.since = None;
        let (first_seq, upto) = (self.batch.first_seq, self.batch.upto);
        let deps = self.batch.deps.take();
        let me = self.proc.index();
        for to in 0..self.cfg.nprocs {
            if to == me {
                continue;
            }
            let delta = deps.as_ref().map(|d| {
                let prev =
                    self.link_clock_out.entry(to).or_insert_with(|| VClock::new(self.cfg.nprocs));
                let changed: Vec<(ProcId, u32)> = (0..self.cfg.nprocs as u32)
                    .map(ProcId)
                    .filter(|&q| d[q] != prev[q])
                    .map(|q| (q, d[q]))
                    .collect();
                *prev = d.clone();
                changed
            });
            let ack = self.session.as_mut().and_then(|s| {
                let rx = s.receiver(nid(to), nid(me));
                let acked = rx.delivered();
                (acked > 0).then_some((acked, rx.epoch()))
            });
            let msg = Msg::UpdateBatch {
                proc: self.proc,
                first_seq,
                upto,
                entries: entries.clone(),
                delta,
                ack,
            };
            self.send(to, msg);
        }
    }

    /// Flushes if a buffered batch has outlived its wall-clock window.
    fn maybe_flush_aged(&mut self) {
        let Some(policy) = self.cfg.batch else { return };
        let window = Duration::from_micros(policy.max_delay_micros);
        let aged = |since: Option<Instant>| since.is_some_and(|t| t.elapsed() >= window);
        if aged(self.batch.since) || aged(self.shard_since) {
            self.flush_updates();
        }
    }

    /// Writes `value` to `loc` and returns the write identity.
    pub fn write(&mut self, loc: Loc, value: impl Into<Value>) -> WriteId {
        let value = value.into();
        let id = self.do_write(loc, UpdatePayload::Set(value));
        self.push(OpKind::Write { loc, value, id });
        id
    }

    /// Applies a commutative increment (counter objects).
    pub fn add(&mut self, loc: Loc, delta: impl Into<Value>) -> WriteId {
        let delta = delta.into();
        let id = self.do_write(loc, UpdatePayload::Add(delta));
        self.push(OpKind::Update { loc, delta, id });
        id
    }

    /// Reads `loc` with an explicit label.
    pub fn read(&mut self, loc: Loc, label: ReadLabel) -> Value {
        self.drain();
        if self.cfg.mode == Mode::Sc {
            self.send(self.cfg.manager_node().index(), Msg::ScRead { proc: self.proc, loc });
            loop {
                match self.sc_resp.take() {
                    Some(Msg::ScReadResp { value, writer }) => {
                        let recorded = Some(writer.unwrap_or(WriteId::initial(loc)));
                        self.push(OpKind::Read { loc, label, value, writer: recorded });
                        return value;
                    }
                    Some(other) => unreachable!("expected read response, got {other:?}"),
                    None => self.step("SC read response"),
                }
            }
        }
        self.shard_gate(loc);
        let effective = self.cfg.read_policy(self.proc, label);
        loop {
            let ready = match effective {
                ReadLabel::Causal => self.replica.causal_ready(loc),
                ReadLabel::Pram => self.replica.pram_ready(loc),
            };
            if ready {
                break;
            }
            self.step("read visibility");
        }
        let value = self.replica.value(loc);
        let writer = Some(self.replica.writer_of(loc).unwrap_or(WriteId::initial(loc)));
        // Observation barrier: the value returned here may expose remote
        // ingests (and, under group commit, own writes) still staged on
        // the WAL — make them durable before the program can act on them.
        self.observe_sync();
        self.push(OpKind::Read { loc, label, value, writer });
        value
    }

    /// A causal read (Definition 2).
    pub fn read_causal(&mut self, loc: Loc) -> Value {
        self.read(loc, ReadLabel::Causal)
    }

    /// A PRAM read (Definition 3).
    pub fn read_pram(&mut self, loc: Loc) -> Value {
        self.read(loc, ReadLabel::Pram)
    }

    /// Acquires a lock.
    pub fn lock(&mut self, lock: LockId, mode: LockMode) {
        assert!(!self.sharded(), "locks are not supported with sharding");
        assert!(!self.held.contains_key(&lock), "{} re-acquires {lock}", self.proc);
        self.drain();
        self.send(
            self.cfg.lock_manager_node(lock).index(),
            Msg::LockReq { proc: self.proc, lock, mode },
        );
        loop {
            let ready = match self.granted.get(&lock) {
                None => false,
                Some(_) if !self.cfg.mode.is_replicated() => true,
                Some(g) => match self.cfg.lock_propagation {
                    LockPropagation::Eager | LockPropagation::DemandDriven => true,
                    LockPropagation::Lazy => {
                        if g.knowledge.is_empty() {
                            g.preds.iter().all(|&(q, c)| self.replica.applied[q] >= c)
                        } else {
                            self.replica.applied.dominates(&g.knowledge)
                        }
                    }
                },
            };
            if ready {
                break;
            }
            self.step("lock grant");
        }
        let g = self.granted.remove(&lock).expect("grant present");
        if self.cfg.lock_propagation == LockPropagation::DemandDriven {
            self.replica.absorb_demand(&g.demand);
        } else {
            self.replica.absorb_sync(&g.knowledge, &g.preds);
        }
        self.held.insert(lock, mode);
        self.push(OpKind::Lock { lock, mode });
    }

    /// Releases a lock.
    pub fn unlock(&mut self, lock: LockId, mode: LockMode) {
        assert_eq!(self.held.get(&lock), Some(&mode), "{} bad unlock", self.proc);
        self.drain();
        // Everything written inside the critical section must be on the
        // wire before the release (and before eager flush probes quote
        // `own_count`): the next holder's grant orders after these sends.
        self.flush_updates();
        let eager = self.cfg.lock_propagation == LockPropagation::Eager
            && self.cfg.mode.is_replicated()
            && self.cfg.nprocs > 1;
        if eager {
            self.flush_acks = 0;
            let upto = self.replica.own_count();
            for i in 0..self.cfg.nprocs {
                if i != self.proc.index() {
                    self.send(i, Msg::Flush { from_proc: self.proc, upto });
                }
            }
            while self.flush_acks < self.cfg.nprocs - 1 {
                self.step("flush acks");
            }
            self.flush_acks = 0;
        }
        self.held.remove(&lock);
        // Record before the release message leaves: the next holder's
        // grant (and its own record) is causally after this push, keeping
        // the recorder's epoch order valid.
        self.push(OpKind::Unlock { lock, mode });
        let dirty = if self.cfg.lock_propagation == LockPropagation::DemandDriven {
            self.replica.take_dirty(lock)
        } else {
            Vec::new()
        };
        let knowledge =
            if self.cfg.mode.carries_vectors() { self.replica.knowledge() } else { VClock::new(0) };
        self.send(
            self.cfg.lock_manager_node(lock).index(),
            Msg::LockRel {
                proc: self.proc,
                lock,
                mode,
                knowledge,
                own_count: self.replica.own_count(),
                dirty,
            },
        );
    }

    /// Write-locks (`wl`).
    pub fn write_lock(&mut self, lock: LockId) {
        self.lock(lock, LockMode::Write);
    }

    /// Write-unlocks (`wu`).
    pub fn write_unlock(&mut self, lock: LockId) {
        self.unlock(lock, LockMode::Write);
    }

    /// Read-locks (`rl`).
    pub fn read_lock(&mut self, lock: LockId) {
        self.lock(lock, LockMode::Read);
    }

    /// Read-unlocks (`ru`).
    pub fn read_unlock(&mut self, lock: LockId) {
        self.unlock(lock, LockMode::Read);
    }

    /// Runs `f` under a write lock.
    pub fn with_write_lock<R>(&mut self, lock: LockId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.write_lock(lock);
        let r = f(self);
        self.write_unlock(lock);
        r
    }

    /// Arrives at (and passes) the default barrier.
    pub fn barrier(&mut self) {
        self.barrier_on(BarrierId(0));
    }

    /// Arrives at (and passes) a barrier object.
    pub fn barrier_on(&mut self, barrier: BarrierId) {
        assert!(!self.sharded(), "barriers are not supported with sharding");
        self.drain();
        // Pre-barrier writes must precede the arrival: the release's
        // knowledge vector points peers at them.
        self.flush_updates();
        let round = {
            let e = self.barrier_next.entry(barrier).or_insert(0);
            let r = *e;
            *e += 1;
            r
        };
        let knowledge = match self.cfg.mode {
            Mode::Causal | Mode::Mixed => self.replica.knowledge(),
            Mode::Pram => self.replica.applied.clone(),
            Mode::Sc => VClock::new(0),
        };
        self.send(
            self.cfg.barrier_manager_node(barrier).index(),
            Msg::BarrierArrive { proc: self.proc, barrier, round, knowledge },
        );
        loop {
            if let Some(k) = self.barrier_released.remove(&(barrier, round)) {
                if !k.is_empty() {
                    if self.cfg.mode.carries_vectors() {
                        self.replica.must_see.merge(&k);
                    }
                    self.replica.pram_wait.merge(&k);
                }
                break;
            }
            self.step("barrier release");
        }
        self.push(OpKind::Barrier { barrier, round: BarrierRound(round) });
    }

    /// Blocks until `loc = value` (`await`).
    pub fn await_eq(&mut self, loc: Loc, value: impl Into<Value>) -> Value {
        let value = value.into();
        self.drain();
        if self.cfg.mode == Mode::Sc {
            self.send(
                self.cfg.manager_node().index(),
                Msg::ScAwait { proc: self.proc, loc, value },
            );
            loop {
                match self.sc_resp.take() {
                    Some(Msg::ScAwaitResp { value: v, writers }) => {
                        let writers =
                            if writers.is_empty() { vec![WriteId::initial(loc)] } else { writers };
                        self.push(OpKind::Await { loc, value: v, writers });
                        return v;
                    }
                    Some(other) => unreachable!("expected await response, got {other:?}"),
                    None => self.step("SC await"),
                }
            }
        }
        self.shard_gate(loc);
        while self.replica.value(loc) != value {
            self.step("await condition");
        }
        let mut writers = self.replica.await_writers(loc);
        if writers.is_empty() {
            writers.push(WriteId::initial(loc));
        }
        // Same observation barrier as `read`: the awaited value must be
        // durable before the program acts on having seen it.
        self.observe_sync();
        self.push(OpKind::Await { loc, value, writers });
        value
    }
}
