//! Kill-9 recovery smoke test: the live executor's durability claim under
//! a real crash, not a simulated one.
//!
//! The parent re-executes itself with `--child DIR [--group-commit]`; the
//! child runs a three-process write storm with durability enabled and is
//! `SIGKILL`ed mid-storm — no destructors, no final fsync, whatever the
//! page cache holds is what survives. The parent then:
//!
//! 1. loads every `replica-{i}` directory and checks the invariant the
//!    WAL format promises: the snapshot decodes, and the log is a valid
//!    prefix (a torn final frame is tolerated and truncated by recovery;
//!    a corrupt interior frame fails the smoke test);
//! 2. replays each replica to count its durably acked own writes;
//! 3. boots a fresh cluster from the same directories and asserts every
//!    one of those acked writes survived into the new incarnation —
//!    `applied[i][i] >= durable_own[i]` — the live analogue of the
//!    DPOR-checked "no acknowledged write is ever lost".
//!
//! The cycle runs twice: once with the default per-write fsync, once
//! with group commit plus update batching (`--group-commit`), where the
//! fsync is deferred to the first outgoing send. The durable-prefix
//! invariant is identical in both: a write any peer could have observed
//! is on disk, so replaying the log can never lose an acked write.
//!
//! Exit code 0 and a final `RECOVERY SMOKE PASS` line on success; any
//! assertion failure or corrupt frame aborts non-zero. CI runs this as
//! the recovery-smoke job.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use mc_live::LiveSystem;
use mc_model::{Loc, ProcId};
use mc_proto::{
    decode_wal, BatchPolicy, DurabilityPolicy, FileDisk, Mode, Replica, Snapshot, WalTail,
};

const NPROCS: usize = 3;
/// Far more writes than fit before the kill lands: the storm must still
/// be running when SIGKILL arrives (each write fsyncs, so the storm is
/// disk-bound and slow by design).
const STORM_WRITES: i64 = 50_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--child") => {
            let dir = PathBuf::from(args.get(1).expect("--child needs a directory"));
            let group_commit = args.iter().any(|a| a == "--group-commit");
            child(&dir, group_commit);
        }
        Some(_) => {
            eprintln!("usage: recovery_smoke [--child DIR [--group-commit]]");
            std::process::exit(2);
        }
        None => {
            cycle("per-write fsync", false);
            cycle("group commit", true);
            println!("RECOVERY SMOKE PASS");
        }
    }
}

/// The victim: an ordinary durable cluster hammering the log until it is
/// killed from outside. Process 0 announces `storming` only after its
/// first writes have been durably acked, so the parent never kills a
/// cluster that has not yet touched disk.
fn child(dir: &Path, group_commit: bool) {
    let policy = DurabilityPolicy::new(32).with_group_commit(group_commit);
    let mut sys = LiveSystem::new(NPROCS, Mode::Causal).durability(policy, dir);
    if group_commit {
        // Group commit's point is amortizing fsyncs over deferred sends,
        // so pair it with the batching it is designed for.
        sys = sys.batching(Some(BatchPolicy::default()));
    }
    for p in 0..NPROCS as u32 {
        sys.spawn(move |ctx| {
            for i in 0..STORM_WRITES {
                ctx.write(Loc(p), i);
                if p == 0 && i == 20 {
                    println!("storming");
                }
            }
        });
    }
    sys.run().expect("storm run (should be killed before finishing)");
}

/// One full kill-and-recover cycle under the given durability variant.
fn cycle(label: &str, group_commit: bool) {
    println!("--- cycle: {label} ---");
    let dir = std::env::temp_dir().join(format!(
        "mc-recovery-smoke-{}-{}",
        std::process::id(),
        group_commit as u8
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create smoke dir");

    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = Command::new(&exe);
    cmd.arg("--child").arg(&dir);
    if group_commit {
        cmd.arg("--group-commit");
    }
    let mut victim = cmd.stdout(Stdio::piped()).spawn().expect("spawn child");

    let mut greeting = String::new();
    std::io::BufReader::new(victim.stdout.take().expect("piped stdout"))
        .read_line(&mut greeting)
        .expect("child greeting");
    assert_eq!(greeting.trim(), "storming", "unexpected child greeting: {greeting:?}");

    // Let the storm build up a log, then kill -9: no shutdown path runs.
    std::thread::sleep(Duration::from_millis(250));
    victim.kill().expect("SIGKILL the storm");
    let status = victim.wait().expect("reap child");
    println!("killed mid-storm ({status})");

    // Phase 1+2: every replica directory must hold a decodable snapshot
    // (if any) and a valid-prefix WAL; count the durably acked own
    // writes each replica had at the moment of death.
    let mut durable_own = [0u32; NPROCS];
    for (p, durable) in durable_own.iter_mut().enumerate() {
        let rdir = dir.join(format!("replica-{p}"));
        let (snap_bytes, wal) = FileDisk::load(&rdir).expect("load replica dir");
        let mut replica = match &snap_bytes {
            Some(bytes) => {
                let snap = Snapshot::decode(bytes).expect("snapshot must decode");
                Replica::from_snapshot(ProcId(p as u32), NPROCS, &snap)
            }
            None => Replica::new(ProcId(p as u32), NPROCS),
        };
        let (records, tail) = decode_wal(&wal);
        match tail {
            WalTail::Clean => {}
            WalTail::Torn { at } => println!("replica-{p}: torn tail at byte {at} (tolerated)"),
            WalTail::Corrupt { at } => {
                eprintln!("replica-{p}: corrupt WAL frame at byte {at} — valid-prefix broken");
                std::process::exit(1);
            }
        }
        let replayed = records.len();
        for rec in records {
            replica.replay_record(rec, Mode::Causal);
        }
        *durable = replica.applied[ProcId(p as u32)];
        println!(
            "replica-{p}: snapshot={} wal-records={replayed} durable-own-writes={durable}",
            snap_bytes.is_some(),
        );
    }
    assert!(
        durable_own.iter().any(|&d| d > 0),
        "the storm never made it to disk — smoke test proves nothing"
    );

    // Phase 3: a fresh cluster reborn from the same directories. Each
    // process performs one more write so the run exercises the full
    // recover-then-continue path (RecoverReq rounds included). The
    // reboot always uses per-write fsync: recovery durability does not
    // depend on the policy the victim died under.
    let mut sys = LiveSystem::new(NPROCS, Mode::Causal).durability(DurabilityPolicy::new(32), &dir);
    for p in 0..NPROCS as u32 {
        sys.spawn(move |ctx| {
            ctx.write(Loc(NPROCS as u32 + p), 1);
        });
    }
    let outcome = sys.run().expect("recovered cluster must run");
    println!(
        "recovered: recoveries={} replayed={} snapshots={}",
        outcome.wal.recoveries, outcome.wal.replayed, outcome.wal.snapshots
    );
    for (p, &durable) in durable_own.iter().enumerate() {
        let proc = ProcId(p as u32);
        let applied = outcome.applied(proc)[proc];
        assert!(
            applied > durable, // strictly >: the post-recovery write above
            "replica-{p}: acked writes lost — {durable} were durable, \
             only {applied} applied after recovery"
        );
        assert!(outcome.incarnation(proc) >= 1, "replica-{p} must bump its incarnation");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
