//! # mc-live — the mixed-consistency protocols on real threads
//!
//! The deterministic simulator (`mc-sim`) is the primary test vehicle; this
//! crate is the *deployment-shaped* executor: every process is an OS
//! thread, every link a crossbeam channel (FIFO per sender — the paper's
//! channel assumption), and the manager shards are threads of their own.
//! [`LiveSystem::lossy`] revokes the reliability half of that assumption
//! (seeded, deterministic per-message drops) and [`LiveSystem::reliable`]
//! earns it back with the same `mc_proto::session` layer the simulator
//! uses — retransmission driven by wall-clock ticks instead of virtual
//! timers.
//! **The protocol state machines are the exact same types** —
//! [`mc_proto::Replica`] and [`mc_proto::Manager`] — so a green run here
//! demonstrates the protocols survive genuine concurrency, not just
//! simulated interleavings.
//!
//! Executions still record checkable histories: the recorder's mutex
//! order is consistent with the message causality (a lock is recorded
//! after its grant arrives, which is after the previous holder recorded
//! its unlock), so the derived lock epochs and barrier rounds are valid
//! and the `mc-model` checkers apply unchanged — on real-thread runs.
//!
//! ```
//! use mc_model::{check, Loc, Value};
//! use mc_live::LiveSystem;
//! use mc_proto::Mode;
//!
//! let mut sys = LiveSystem::new(2, Mode::Mixed).record(true);
//! sys.spawn(|ctx| {
//!     ctx.write(Loc(0), 42);
//!     ctx.write(Loc(1), 1);
//! });
//! sys.spawn(|ctx| {
//!     ctx.await_eq(Loc(1), Value::Int(1));
//!     assert_eq!(ctx.read_pram(Loc(0)), Value::Int(42));
//! });
//! let outcome = sys.run()?;
//! check::check_mixed(&outcome.history.unwrap()).expect("real threads, still mixed consistent");
//! # Ok::<(), mc_live::LiveError>(())
//! ```

#![warn(missing_docs)]

mod system;

pub use system::{
    run_manager_node, run_proc_node, ChannelTransport, LiveCtx, LiveError, LiveOutcome, LiveSystem,
    Net, NodeConfig, NodeId, Transport, WalCounters, Wire,
};
