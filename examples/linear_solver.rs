//! The iterative linear-equation solvers of Section 5.1: Figure 2
//! (barriers, PRAM reads) versus Figure 3 (coordinator handshaking,
//! causal reads), plus the Section 7 asynchronous-relaxation remark.
//!
//! Reproduces the paper's qualitative claim C1: "the linear equation
//! solver using barriers (Figure 2) has a better performance than the one
//! with handshaking (Figure 3)".
//!
//! Run with: `cargo run --example linear_solver`

use mc_apps::dense::{diag_dominant_system, jacobi_reference, residual_inf};
use mc_apps::solver::{
    run_async_relaxation, run_barrier_solver, run_handshake_solver, SolverConfig,
};
use mixed_consistency::{Mode, ReadLabel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let workers = 4;
    let (a, b) = diag_dominant_system(n, 2026);

    let (x_ref, iters_ref) = jacobi_reference(&a, &b, 1e-9, 500);
    println!(
        "sequential Jacobi reference: {iters_ref} iterations, residual {:.2e}\n",
        residual_inf(&a, &x_ref, &b)
    );

    println!(
        "{:<34} {:>14} {:>10} {:>12} {:>12}",
        "variant", "virtual time", "messages", "kbytes", "residual"
    );

    // Figure 2: barriers + PRAM reads (PRAM-consistent program,
    // Corollary 2 ⇒ sequentially consistent behaviour).
    let mut cfg = SolverConfig::new(n, workers, Mode::Pram);
    cfg.tol = 1e-9;
    cfg.max_iters = 500;
    let bar = run_barrier_solver(&cfg, &a, &b)?;
    print_row("Fig.2 barriers (PRAM memory)", &bar);

    // Figure 3: handshakes + causal reads on causal memory.
    cfg.mode = Mode::Causal;
    let hs = run_handshake_solver(&cfg, &a, &b, ReadLabel::Causal)?;
    print_row("Fig.3 handshake (causal memory)", &hs);

    // Figure 3 with PRAM reads — the paper: "the reads of the input matrix
    // in this solution cannot be PRAM". On the mixed protocol the labels
    // are per-read, so we can run the experiment the paper only argues:
    cfg.mode = Mode::Mixed;
    let hs_pram = run_handshake_solver(&cfg, &a, &b, ReadLabel::Pram)?;
    print_row("Fig.3 handshake (PRAM reads!)", &hs_pram);

    // Section 7: asynchronous relaxation converges even with PRAM.
    cfg.mode = Mode::Pram;
    let gs = run_async_relaxation(&cfg, &a, &b, 40)?;
    print_row("async relaxation (PRAM, §7)", &gs);

    println!();
    println!(
        "claim C1: barrier time {} < handshake time {} : {}",
        bar.metrics.finish_time,
        hs.metrics.finish_time,
        bar.metrics.finish_time < hs.metrics.finish_time
    );
    println!(
        "          barrier msgs {} < handshake msgs {} : {}",
        bar.metrics.messages,
        hs.metrics.messages,
        bar.metrics.messages < hs.metrics.messages
    );
    println!("claim C3: async relaxation on PRAM converged (residual {:.2e})", gs.residual);
    Ok(())
}

fn print_row(name: &str, run: &mc_apps::solver::SolverRun) {
    println!(
        "{:<34} {:>14} {:>10} {:>12.1} {:>12.2e}",
        name,
        run.metrics.finish_time.to_string(),
        run.metrics.messages,
        run.metrics.bytes as f64 / 1024.0,
        run.residual
    );
}
