//! Sparse Cholesky factorization (Section 5.3, Figure 5): the lock-based
//! algorithm versus the lock-free counter-object optimization.
//!
//! Reproduces the paper's qualitative claim C2: "an algorithm using
//! counter objects outperforms the lock-based algorithm (Figure 5)
//! significantly".
//!
//! Run with: `cargo run --example cholesky`

use mc_apps::cholesky::{run_cholesky, CholeskyConfig, CholeskyVariant};
use mc_apps::sparse::{grid_laplacian, sparse_cholesky_reference, symbolic_factorize};
use mixed_consistency::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 4; // 4x4 grid => 16x16 SPD matrix
    let a = grid_laplacian(k);
    let sym = symbolic_factorize(&a);
    println!(
        "grid Laplacian {k}x{k}: n = {}, nnz(A lower) = {}, nnz(L) = {} (fill-in {})",
        a.n(),
        a.lower_nnz(),
        sym.l_nnz(),
        sym.l_nnz() - a.lower_nnz()
    );

    // Sequential reference for verification.
    let l_ref = sparse_cholesky_reference(&a, &sym);

    println!(
        "\n{:<22} {:>14} {:>10} {:>10} {:>12} {:>10}",
        "variant", "virtual time", "messages", "lock msgs", "residual", "max|ΔL|"
    );
    let cfg = CholeskyConfig { mode: Mode::Mixed, ..CholeskyConfig::new(4) };

    let mut times = Vec::new();
    for variant in [CholeskyVariant::Locks, CholeskyVariant::Counters] {
        let run = run_cholesky(&cfg, &a, &sym, variant)?;
        let lock_msgs = run.metrics.kind("lock_req").count
            + run.metrics.kind("lock_grant").count
            + run.metrics.kind("lock_rel").count;
        println!(
            "{:<22} {:>14} {:>10} {:>10} {:>12.2e} {:>10.2e}",
            variant.to_string(),
            run.metrics.finish_time.to_string(),
            run.metrics.messages,
            lock_msgs,
            run.residual,
            run.l.max_abs_diff(&l_ref)
        );
        assert!(run.residual < 1e-8, "factorization must be correct");
        times.push(run.metrics.finish_time);
    }

    println!("\nclaim C2: counters {} < locks {} : {}", times[1], times[0], times[1] < times[0]);
    println!("(the counter variant eliminates every lock round-trip; its updates");
    println!(" commute, so causal memory suffices without critical sections)");
    Ok(())
}
