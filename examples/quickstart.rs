//! Quickstart: a producer/consumer handshake on mixed-consistency memory.
//!
//! Demonstrates the core loop of the library: build a [`System`], spawn
//! processes that use labeled reads and `await` synchronization, run it on
//! the deterministic simulator, then verify the recorded history against
//! the paper's Definition 4.
//!
//! Run with: `cargo run --example quickstart`

use mixed_consistency::{check, Loc, Mode, ProcId, ReadLabel, System, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Shared locations: x0 carries data, x1 is the ready flag.
    let data = Loc(0);
    let flag = Loc(1);

    let mut sys = System::new(2, Mode::Mixed).seed(7).record(true);

    // The producer writes the payload, then raises the flag. Writes are
    // non-blocking: they update the local replica and broadcast.
    sys.spawn(move |ctx| {
        ctx.write(data, 42);
        ctx.write(flag, 1);
        println!("[p0] wrote data=42 and flag=1");
    });

    // The consumer awaits the flag (Section 3.1.3 of the paper), then
    // reads the data. A PRAM read suffices here: the await synchronizes
    // directly with the flag writer, and per-writer FIFO order makes the
    // earlier data write visible too.
    sys.spawn(move |ctx| {
        let observed = ctx.await_eq(flag, 1);
        let v = ctx.read(data, ReadLabel::Pram);
        println!("[p1] awaited flag={observed}, read data={v}");
        assert_eq!(v, Value::Int(42));
    });

    let outcome = sys.run()?;
    println!("\nvirtual time : {}", outcome.metrics.finish_time);
    println!("messages     : {}", outcome.metrics.messages);
    println!("final data   : {}", outcome.final_value(ProcId(1), data));

    // Every run yields a checkable history. `check_mixed` is Definition 4:
    // every PRAM-labeled read is a PRAM read, every causal-labeled read a
    // causal read.
    let history = outcome.history.expect("recording was enabled");
    println!("\nrecorded history:\n{}", history.to_pretty_string());
    check::check_mixed(&history)?;
    println!("history is mixed consistent (Definition 4) ✓");

    // This small history is even sequentially consistent — the exact
    // checker finds a witness serialization.
    let verdict = mixed_consistency::sc::check_sequential(&history)?;
    println!("sequentially consistent: {}", verdict.is_sc());
    Ok(())
}
