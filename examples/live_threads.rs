//! The live executor: the same protocol state machines (`mc-proto`'s
//! `Replica` and `Manager`) running on real OS threads and crossbeam
//! channels instead of the deterministic simulator — and the recorded
//! histories still verified against the paper's definitions.
//!
//! Run with: `cargo run --example live_threads`

use mc_live::LiveSystem;
use mixed_consistency::{check, Loc, LockId, Mode, ProcId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three real threads hammer a lock-protected counter on the mixed
    // protocol; a fourth phase-steps through barriers.
    println!("running 20 repetitions of a racy program on real threads...\n");
    let mut checked = 0usize;
    let mut total_msgs = 0u64;
    for _ in 0..20 {
        let mut sys = LiveSystem::new(4, Mode::Mixed).record(true);
        for _ in 0..3 {
            sys.spawn(|ctx| {
                for _ in 0..5 {
                    ctx.with_write_lock(LockId(0), |ctx| {
                        let v = ctx.read_causal(Loc(0)).expect_i64();
                        ctx.write(Loc(0), v + 1);
                    });
                }
                ctx.barrier();
            });
        }
        sys.spawn(|ctx| {
            ctx.barrier(); // joins after the writers are done
            let total = ctx.read_causal(Loc(0));
            assert_eq!(total, Value::Int(15), "no lost updates");
        });

        let outcome = sys.run()?;
        assert_eq!(outcome.final_value(ProcId(0), Loc(0)), Value::Int(15));
        let history = outcome.history.expect("recorded");
        check::check_mixed(&history)?;
        checked += 1;
        total_msgs += outcome.messages;
    }
    println!("  {checked}/20 executions mixed consistent (Definition 4) ✓");
    println!("  every run summed 3 workers x 5 locked increments to exactly 15 ✓");
    println!("  average messages per run: {}", total_msgs / 20);
    println!();
    println!("the exact same Replica/Manager state machines back both this");
    println!("executor and the deterministic simulator — consistency holds");
    println!("under genuine OS-thread concurrency, not just simulated time.");
    Ok(())
}
