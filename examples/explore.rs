//! Exhaustive schedule exploration: verify a program's consistency on
//! EVERY scheduler interleaving, not just sampled seeds.
//!
//! The kernel's tie-breaking decisions are the only nondeterminism under
//! a zero-latency, zero-cost configuration; exploration enumerates the
//! decision tree depth-first (the systematic concurrency-testing
//! approach) and runs the checkers on each execution. Dynamic
//! partial-order reduction then covers the same outcome space with one
//! representative per commuting class of schedules, and a seeded fault
//! budget turns the explorer into a counterexample generator whose
//! minimized artifacts replay through `mc-check --replay`.
//!
//! Run with: `cargo run --example explore --release`

use mixed_consistency::explore::ExploreOptions;
use mixed_consistency::repro::find_and_minimize;
use mixed_consistency::{
    check, explore, sc, FaultBudget, Loc, Mode, ProgSpec, ReadLabel, SpecOp, System, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------ store buffer
    // Dekker's litmus on mixed memory: count how many schedules realize
    // each read outcome, verifying Definition 4 on every one.
    let mut outcomes = std::collections::BTreeMap::<String, usize>::new();
    let report = explore::explore(
        20_000,
        || {
            let mut sys =
                System::new(2, Mode::Mixed).record(true).sim_config(explore::racing_config());
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 1);
                let _ = ctx.read_causal(Loc(1));
            });
            sys.spawn(|ctx| {
                ctx.write(Loc(1), 1);
                let _ = ctx.read_causal(Loc(0));
            });
            sys
        },
        |o| {
            let h = o.history.as_ref().unwrap();
            check::check_mixed(h).map_err(|e| e.to_string())?;
            let reads: Vec<i64> = h
                .iter()
                .filter_map(|(_, op)| match op.kind {
                    mixed_consistency::OpKind::Read { value: Value::Int(v), .. } => Some(v),
                    _ => None,
                })
                .collect();
            let sc_ok = !matches!(
                sc::check_sequential(h).map_err(|e| e.to_string())?,
                sc::ScVerdict::NotSequentiallyConsistent
            );
            *outcomes
                .entry(format!("r0(y)={} r1(x)={} sc={}", reads[0], reads[1], sc_ok))
                .or_default() += 1;
            Ok(())
        },
    )?;

    println!("store-buffer litmus on mixed memory:");
    println!(
        "  explored {} schedules (complete: {}, max depth {})\n",
        report.runs, report.complete, report.max_depth
    );
    println!("  outcome distribution:");
    for (outcome, count) in &outcomes {
        println!("    {outcome:<28} x{count}");
    }
    println!("\n  every schedule was mixed consistent (Definition 4) ✓");
    println!("  the sc=false rows are the weak-memory outcomes sequential");
    println!("  consistency forbids — causal memory permits them.\n");

    // -------------------------------------------- partial-order reduction
    // The same program under DPOR: identical outcome coverage, a
    // fraction of the schedules (see tests/explore_litmus.rs for the
    // conformance proof obligations).
    let spec = ProgSpec::new(Mode::Mixed)
        .proc(vec![
            SpecOp::Write { loc: Loc(0), value: 1 },
            SpecOp::Read { loc: Loc(1), label: ReadLabel::Causal },
        ])
        .proc(vec![
            SpecOp::Write { loc: Loc(1), value: 1 },
            SpecOp::Read { loc: Loc(0), label: ReadLabel::Causal },
        ]);
    let verify = |o: &mixed_consistency::Outcome| {
        check::check_mixed(o.history.as_ref().unwrap()).map(|_| ()).map_err(|e| e.to_string())
    };
    let naive =
        explore::explore_with(ExploreOptions::new().dpor(false), || spec.build_system(), verify)?;
    let dpor = explore::explore_with(ExploreOptions::new(), || spec.build_system(), verify)?;
    println!("dynamic partial-order reduction on the same litmus:");
    println!(
        "  naive DFS: {} schedules; DPOR: {} ({} sleep-pruned) — {:.1}x fewer,",
        naive.runs,
        dpor.runs,
        dpor.pruned,
        naive.runs as f64 / dpor.runs as f64
    );
    println!("  covering the identical {} canonical outcomes ✓\n", dpor.unique_outcomes);

    // ------------------------------------------- counterexample pipeline
    // Give the explorer one message drop to spend on a PRAM store chain:
    // it finds the consistency violation, shrinks program and decision
    // trace, and emits an artifact `mc-check --replay` re-executes.
    let fragile = ProgSpec::new(Mode::Pram)
        .proc(vec![
            SpecOp::Write { loc: Loc(0), value: 1 },
            SpecOp::Write { loc: Loc(0), value: 2 },
            SpecOp::Write { loc: Loc(1), value: 1 },
        ])
        .proc(vec![
            SpecOp::Await { loc: Loc(1), value: 1 },
            SpecOp::Read { loc: Loc(0), label: ReadLabel::Pram },
        ]);
    let budget = FaultBudget::new().drops(1);
    let options = ExploreOptions::new().allow_deadlock(true).max_runs(50_000);
    // Dropped-message runs may deadlock (tolerated dead ends under
    // `allow_deadlock`); the silent panic hook hides the kernel's
    // noisy-but-expected unwind of those aborted process threads.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let repro = find_and_minimize(&fragile, Some(&budget), &options)
        .expect("one dropped update breaks PRAM consistency");
    std::panic::set_hook(default_hook);
    println!("minimized counterexample (replay with `mc-check <file> --replay`):");
    for line in repro.to_text().lines() {
        println!("  | {line}");
    }
    println!();

    // ----------------------------------------------------- message-passing flag
    // The await idiom is SC on every schedule — exploration *proves* it
    // for this program size.
    let report = explore::explore(
        20_000,
        || {
            let mut sys =
                System::new(2, Mode::Mixed).record(true).sim_config(explore::racing_config());
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 42);
                ctx.write(Loc(1), 1);
            });
            sys.spawn(|ctx| {
                ctx.await_eq(Loc(1), 1);
                assert_eq!(ctx.read_pram(Loc(0)), Value::Int(42));
            });
            sys
        },
        |o| {
            let h = o.history.as_ref().unwrap();
            check::check_mixed(h).map_err(|e| e.to_string())?;
            match sc::check_sequential(h).map_err(|e| e.to_string())? {
                sc::ScVerdict::NotSequentiallyConsistent => Err("not SC".into()),
                _ => Ok(()),
            }
        },
    )?;
    println!("producer/consumer await idiom:");
    println!(
        "  {} schedules, complete: {} — sequentially consistent on ALL of them ✓",
        report.runs, report.complete
    );
    Ok(())
}
