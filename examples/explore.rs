//! Exhaustive schedule exploration: verify a program's consistency on
//! EVERY scheduler interleaving, not just sampled seeds.
//!
//! The kernel's tie-breaking decisions are the only nondeterminism under
//! a zero-latency, zero-cost configuration; exploration enumerates the
//! decision tree depth-first (the systematic concurrency-testing
//! approach) and runs the checkers on each execution.
//!
//! Run with: `cargo run --example explore --release`

use mixed_consistency::{check, explore, sc, Loc, Mode, System, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------ store buffer
    // Dekker's litmus on mixed memory: count how many schedules realize
    // each read outcome, verifying Definition 4 on every one.
    let mut outcomes = std::collections::BTreeMap::<String, usize>::new();
    let report = explore::explore(
        20_000,
        || {
            let mut sys =
                System::new(2, Mode::Mixed).record(true).sim_config(explore::racing_config());
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 1);
                let _ = ctx.read_causal(Loc(1));
            });
            sys.spawn(|ctx| {
                ctx.write(Loc(1), 1);
                let _ = ctx.read_causal(Loc(0));
            });
            sys
        },
        |o| {
            let h = o.history.as_ref().unwrap();
            check::check_mixed(h).map_err(|e| e.to_string())?;
            let reads: Vec<i64> = h
                .iter()
                .filter_map(|(_, op)| match op.kind {
                    mixed_consistency::OpKind::Read { value: Value::Int(v), .. } => Some(v),
                    _ => None,
                })
                .collect();
            let sc_ok = !matches!(
                sc::check_sequential(h).map_err(|e| e.to_string())?,
                sc::ScVerdict::NotSequentiallyConsistent
            );
            *outcomes
                .entry(format!("r0(y)={} r1(x)={} sc={}", reads[0], reads[1], sc_ok))
                .or_default() += 1;
            Ok(())
        },
    )?;

    println!("store-buffer litmus on mixed memory:");
    println!(
        "  explored {} schedules (complete: {}, max depth {})\n",
        report.runs, report.complete, report.max_depth
    );
    println!("  outcome distribution:");
    for (outcome, count) in &outcomes {
        println!("    {outcome:<28} x{count}");
    }
    println!("\n  every schedule was mixed consistent (Definition 4) ✓");
    println!("  the sc=false rows are the weak-memory outcomes sequential");
    println!("  consistency forbids — causal memory permits them.\n");

    // ----------------------------------------------------- message-passing flag
    // The await idiom is SC on every schedule — exploration *proves* it
    // for this program size.
    let report = explore::explore(
        20_000,
        || {
            let mut sys =
                System::new(2, Mode::Mixed).record(true).sim_config(explore::racing_config());
            sys.spawn(|ctx| {
                ctx.write(Loc(0), 42);
                ctx.write(Loc(1), 1);
            });
            sys.spawn(|ctx| {
                ctx.await_eq(Loc(1), 1);
                assert_eq!(ctx.read_pram(Loc(0)), Value::Int(42));
            });
            sys
        },
        |o| {
            let h = o.history.as_ref().unwrap();
            check::check_mixed(h).map_err(|e| e.to_string())?;
            match sc::check_sequential(h).map_err(|e| e.to_string())? {
                sc::ScVerdict::NotSequentiallyConsistent => Err("not SC".into()),
                _ => Ok(()),
            }
        },
    )?;
    println!("producer/consumer await idiom:");
    println!(
        "  {} schedules, complete: {} — sequentially consistent on ALL of them ✓",
        report.runs, report.complete
    );
    Ok(())
}
