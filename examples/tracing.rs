//! Structured tracing: run a faulty-but-reliable causal workload with
//! the event tracer on, then export the trace twice —
//!
//! * `target/trace/faulty_causal.jsonl` — one JSON object per event
//!   (virtual-time key, category, span duration, vector timestamps on
//!   update messages), greppable and diffable;
//! * `target/trace/faulty_causal.chrome.json` — the Chrome trace event
//!   format: open <https://ui.perfetto.dev> and drop the file in to see
//!   per-node tracks with message/syscall/stall spans and fault instants
//!   on the virtual timeline.
//!
//! Tracing is strictly opt-in: the same run without `.trace(true)`
//! records nothing and allocates nothing (the second half demonstrates
//! it), so the instrumented simulator stays byte-for-byte deterministic
//! and benchmark-neutral when the tracer is off.
//!
//! Run with: `cargo run --example tracing`

use std::collections::BTreeMap;

use mixed_consistency::{FaultPlan, Loc, Mode, RunError, System, Value};

/// One writer counts a location up and raises a flag; two consumers wait
/// on the flag and read the counter causally. Drops and duplicates force
/// the session layer to retransmit — all of it lands in the trace.
fn workload(trace: bool) -> System {
    let plan = FaultPlan::new().drop_rate(0.15).duplicate_rate(0.1);
    let mut sys =
        System::new(3, Mode::Causal).seed(7).record(true).trace(trace).faults(plan).reliable(true);
    sys.spawn(|ctx| {
        for v in 1..=20i64 {
            ctx.write(Loc(0), v);
        }
        ctx.write(Loc(1), 1);
    });
    for _ in 0..2 {
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), 1);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(20));
        });
    }
    sys
}

fn main() -> Result<(), RunError> {
    let outcome = workload(true).run()?;
    let trace = outcome.trace.as_ref().expect("tracing was enabled");

    println!("== traced run: causal, 15% drop + 10% duplication, session layer on ==\n");
    println!("{}\n", outcome.metrics);

    let mut by_cat: BTreeMap<&str, usize> = BTreeMap::new();
    let mut retransmits = 0usize;
    let mut with_vclock = 0usize;
    for ev in trace.events() {
        *by_cat.entry(ev.cat).or_default() += 1;
        if ev.name == "retransmit" {
            retransmits += 1;
        }
        if ev.args.iter().any(|(k, _)| *k == "vclock") {
            with_vclock += 1;
        }
    }
    println!("trace: {} events", trace.len());
    for (cat, n) in &by_cat {
        println!("  {cat:<8} {n}");
    }
    println!("  retransmission spans: {retransmits}");
    println!("  update spans carrying a vector timestamp: {with_vclock}");
    assert!(by_cat.contains_key("fault"), "the fault plan must leave fault events");
    assert!(retransmits > 0, "drops under the session layer must retransmit");
    assert!(with_vclock > 0, "causal updates carry their vector timestamp");

    std::fs::create_dir_all("target/trace").expect("create target/trace");
    trace.write_jsonl("target/trace/faulty_causal.jsonl").expect("write JSONL");
    trace.write_chrome_trace("target/trace/faulty_causal.chrome.json").expect("write Chrome trace");
    println!("\nwrote target/trace/faulty_causal.jsonl");
    println!("wrote target/trace/faulty_causal.chrome.json");
    println!("  -> open https://ui.perfetto.dev and drop the .chrome.json in;");
    println!("     tracks are nodes, spans are messages/syscalls/stalls,");
    println!("     instants are faults and timers; click an update span to");
    println!("     see its vector timestamp under 'vclock'.");

    // The same workload with tracing off: identical metrics, no trace.
    let quiet = workload(false).run()?;
    assert!(quiet.trace.is_none(), "tracing is opt-in");
    assert_eq!(
        quiet.metrics.finish_time, outcome.metrics.finish_time,
        "tracing must not perturb the simulation"
    );
    println!(
        "\nuntraced rerun: same virtual finish time ({}), no trace kept",
        quiet.metrics.finish_time
    );
    Ok(())
}
