//! The electromagnetic-field computation of Section 5.2 (Figure 4): a
//! 1-D FDTD Maxwell solver with alternating E/H phases separated by
//! barriers, ghost-cell reads across partitions, PRAM reads throughout.
//!
//! The program is PRAM-consistent (Corollary 2), so the parallel run must
//! match the sequential reference bit for bit — verified below on every
//! memory mode.
//!
//! Run with: `cargo run --example em_fields`

use mc_apps::em::{fdtd_reference, run_fdtd, EmConfig};
use mixed_consistency::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EmConfig::new(48, 30, 4, Mode::Pram);
    let (e_ref, _) = fdtd_reference(&cfg);

    println!("1-D FDTD, {} E-nodes, {} steps, {} workers\n", cfg.cells, cfg.steps, cfg.workers);
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10}",
        "mode", "virtual time", "messages", "kbytes", "bit-exact"
    );

    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed, Mode::Sc] {
        let run = run_fdtd(&EmConfig { mode, ..cfg.clone() })?;
        let exact = run.e == e_ref;
        println!(
            "{:<10} {:>14} {:>10} {:>10.1} {:>10}",
            mode.to_string(),
            run.metrics.finish_time.to_string(),
            run.metrics.messages,
            run.metrics.bytes as f64 / 1024.0,
            exact
        );
        assert!(exact, "parallel FDTD must equal the sequential reference");
    }

    // Render the final E field as a rough ASCII profile.
    let run = run_fdtd(&cfg)?;
    println!("\nfinal E field (pulse split into two travelling waves):");
    let max = run.e.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    for (i, v) in run.e.iter().enumerate() {
        let bars = ((v.abs() / max) * 40.0).round() as usize;
        println!("{i:>3} {}{}", if *v < 0.0 { "-" } else { " " }, "#".repeat(bars));
    }
    Ok(())
}
