//! A guided tour of the consistency-model boundaries, using the litmus
//! library: which anomalies PRAM admits, which causal memory admits, and
//! where sequential consistency ends — including the paper's Figure 1
//! synchronization-order diagram.
//!
//! Run with: `cargo run --example anomalies`

use mixed_consistency::model::litmus;
use mixed_consistency::model::Causality;
use mixed_consistency::{check, sc, ReadLabel};

fn classify(name: &str, h: &mixed_consistency::History) {
    let pram = check::check_pram(h).is_ok();
    let causal = check::check_causal(h).is_ok();
    let seq = matches!(sc::check_sequential(h), Ok(sc::ScVerdict::SequentiallyConsistent(_)));
    println!("{name:<28} pram={pram:<5} causal={causal:<5} sc={seq}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("consistency classification of the litmus histories");
    println!("(each checker judges ALL reads under its own definition)\n");

    classify("causality chain", &litmus::causality_chain(ReadLabel::Pram));
    classify("store buffer (Dekker)", &litmus::store_buffer());
    classify("write-order disagreement", &litmus::write_order_disagreement());
    classify("FIFO violation", &litmus::fifo_violation());
    classify("lock transitive chain", &litmus::lock_transitive_chain());
    classify("entry-consistent transfer", &litmus::entry_consistent_transfer());
    classify("barrier phase program", &litmus::barrier_phase_program());
    classify("producer/consumer await", &litmus::producer_consumer_await());
    classify("counter await", &litmus::counter_await());

    // ---------------------------------------------------------------- Figure 1
    println!("\nFigure 1: lock and barrier synchronization orders");
    let fig = litmus::figure1();
    let h = &fig.history;
    let cz = Causality::new(h)?;
    println!("{}", h.to_pretty_string());

    let (rl0, _) = fig.first_readers[0];
    let (rl1, ru1) = fig.first_readers[1];
    let (wl, wu) = fig.writer;
    println!("concurrent readers unordered : rl0 ∦ rl1 = {}", cz.concurrent(rl0, rl1));
    println!("readers before writer        : ru1 ↦ wl  = {}", cz.precedes(ru1, wl));
    println!(
        "writer before second readers : wu ↦ rl0' = {}",
        cz.precedes(wu, fig.second_readers[0].0)
    );
    println!(
        "phase i op ; every barrier op: {}",
        fig.barrier.iter().all(|&b| cz.precedes(fig.phase_i_op, b))
    );
    println!("phase i op ; phase i+1 op    : {}", cz.precedes(fig.phase_i_op, fig.phase_i1_op));
    println!("barrier ops mutually unordered: {}", cz.concurrent(fig.barrier[0], fig.barrier[1]));

    check::check_mixed(h)?;
    println!("\nFigure 1 history is mixed consistent ✓");
    println!("\nstatistics: {}", mixed_consistency::viz::stats(h)?);
    println!("(render the causality graph: mixed_consistency::viz::to_dot + `dot -Tsvg`)");

    // -------------------------------------------------------- Theorem 1 in use
    println!("\nTheorem 1 (commutativity + causal reads ⇒ SC):");
    for (name, h) in [
        ("entry-consistent transfer", litmus::entry_consistent_transfer()),
        ("store buffer", litmus::store_buffer()),
    ] {
        let outcome = mixed_consistency::commute::check_theorem1(&h)?;
        println!("  {name:<28} applies = {}", outcome.applies());
    }
    Ok(())
}
