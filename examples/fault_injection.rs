//! Fault injection: break the network's FIFO guarantee and watch the
//! consistency checkers catch the resulting violations.
//!
//! The PRAM protocol applies updates on receipt, trusting the channels'
//! FIFO order (the paper's Section 6 assumption). With reordering
//! injected, a replica can apply a writer's updates out of order and
//! serve stale values — a Definition 3 violation the recorded history
//! exposes. The causal protocol is immune: its vector timestamps restore
//! the order before applying.
//!
//! Run with: `cargo run --example fault_injection`

use mixed_consistency::{check, LatencyModel, Loc, Mode, SimTime, System, Value};

/// A workload that is extremely sensitive to per-writer ordering: one
/// writer counts up a location, readers poll it and record histories.
fn run(mode: Mode, inject: bool, seed: u64) -> Result<bool, Box<dyn std::error::Error>> {
    let mut sys = System::new(3, mode)
        .seed(seed)
        .record(true)
        // Huge jitter so reordering actually happens when FIFO is off.
        .latency(LatencyModel {
            base: SimTime::from_micros(2),
            per_byte_ns: 0,
            jitter: SimTime::from_micros(50),
        });
    if inject {
        sys = sys.inject_reordering();
    }

    sys.spawn(|ctx| {
        for v in 1..=20i64 {
            ctx.write(Loc(0), v);
        }
        ctx.write(Loc(1), 1); // done flag
    });
    for _ in 0..2 {
        sys.spawn(|ctx| {
            // Poll the counter until the writer finishes; every read is
            // recorded and must be monotone under PRAM.
            loop {
                let _ = ctx.read_pram(Loc(0));
                if ctx.read_pram(Loc(1)) == Value::Int(1) {
                    break;
                }
            }
        });
    }

    let outcome = sys.run()?;
    let history = outcome.history.expect("recording enabled");
    Ok(check::check_mixed(&history).is_ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<10} {:<12} {:<30}", "mode", "channels", "recorded history verdict");

    let cases = [
        (Mode::Pram, false, "consistent (FIFO honored)"),
        (Mode::Pram, true, "VIOLATIONS expected (apply-on-receipt)"),
        (Mode::Causal, true, "consistent (vectors reorder)"),
        (Mode::Mixed, true, "consistent (vectors reorder)"),
    ];

    for (mode, inject, note) in cases {
        // Scan seeds: reordering is probabilistic under jitter.
        let mut consistent_all = true;
        let mut broke_at = None;
        for seed in 0..20 {
            let ok = run(mode, inject, seed)?;
            if !ok {
                consistent_all = false;
                broke_at = Some(seed);
                break;
            }
        }
        let verdict = if consistent_all {
            "consistent".to_string()
        } else {
            format!("violation caught (seed {})", broke_at.unwrap())
        };
        println!(
            "{:<10} {:<12} {:<30} [{note}]",
            mode.to_string(),
            if inject { "reordering" } else { "fifo" },
            verdict
        );

        // The expectations are assertions, not just prose:
        match (mode, inject) {
            (Mode::Pram, false) => assert!(consistent_all),
            (Mode::Pram, true) => assert!(!consistent_all, "injection must be caught"),
            (_, true) => assert!(consistent_all, "causal gating must mask reordering"),
            _ => {}
        }
    }

    println!("\nthe checkers detect real protocol faults — they are not vacuous.");
    Ok(())
}
