//! Fault injection: attack the network's channel assumptions and watch
//! either the checkers catch the resulting violations (session layer
//! off) or the session layer earn the assumptions back (session layer
//! on).
//!
//! Three demonstrations:
//!
//! 1. **Duplication + reordering vs. raw PRAM.** The PRAM protocol
//!    applies updates on receipt, trusting the channels' FIFO guarantee
//!    (the paper's Section 6 assumption). A duplicated or reordered
//!    update regresses a replica's store and the Definition 3 checker
//!    catches it in the recorded history. The causal protocol is immune:
//!    its vector timestamps restore the order before applying.
//! 2. **The same plan plus 10% loss, session layer on.** Sequencing,
//!    retransmission, and duplicate suppression mask every fault; all
//!    modes stay consistent — and loss without the session layer is a
//!    guaranteed deadlock.
//! 3. **Crash/restart.** A replica's node goes dark mid-broadcast,
//!    wiping its in-flight deliveries. Without the session layer the
//!    replica never learns the writer finished (deadlock); with it, the
//!    retransmission timers re-deliver everything after the restart and
//!    the causal protocol re-converges.
//!
//! Run with: `cargo run --example fault_injection`

use mixed_consistency::{
    check, FaultPlan, Loc, Mode, NodeId, ProcId, RunError, SimError, SimTime, System, Value,
};

/// Duplication plus heavy reordering — FIFO-hostile, but lossless, so
/// even the raw protocols terminate.
fn noisy_plan() -> FaultPlan {
    FaultPlan::new().duplicate_rate(0.2).reorder(SimTime::from_micros(50))
}

/// A workload extremely sensitive to per-writer ordering: one writer
/// counts up a location, two readers poll it and record histories.
fn run_counter(mode: Mode, plan: FaultPlan, reliable: bool, seed: u64) -> Result<bool, RunError> {
    let mut sys = System::new(3, mode).seed(seed).record(true).faults(plan).reliable(reliable);
    sys.spawn(|ctx| {
        for v in 1..=20i64 {
            ctx.write(Loc(0), v);
        }
        ctx.write(Loc(1), 1); // done flag
    });
    for _ in 0..2 {
        sys.spawn(|ctx| {
            // Every read is recorded and must be monotone under PRAM.
            loop {
                let _ = ctx.read_pram(Loc(0));
                if ctx.read_pram(Loc(1)) == Value::Int(1) {
                    break;
                }
            }
        });
    }
    let outcome = sys.run()?;
    let history = outcome.history.expect("recording enabled");
    Ok(check::check_mixed(&history).is_ok())
}

/// Scans seeds until one produces a checker-detected violation (or none
/// does). Fault injection is probabilistic per seed but each seed is
/// fully deterministic.
fn scan(mode: Mode, plan: &FaultPlan, reliable: bool) -> Result<Option<u64>, RunError> {
    for seed in 0..20 {
        if !run_counter(mode, plan.clone(), reliable, seed)? {
            return Ok(Some(seed));
        }
    }
    Ok(None)
}

/// A crash victim's program: wait for the writer's flag, then read the
/// final counter causally.
fn crash_run(reliable: bool) -> Result<Value, RunError> {
    // Node 1 is dark from 40µs to 600µs — exactly while the writer
    // broadcasts — wiping every delivery to it in that window.
    let plan = FaultPlan::new().crash(
        NodeId(1),
        SimTime::from_micros(40),
        Some(SimTime::from_micros(600)),
    );
    let mut sys = System::new(3, Mode::Causal).seed(11).faults(plan).reliable(reliable);
    sys.spawn(|ctx| {
        for v in 1..=10i64 {
            ctx.write(Loc(0), v);
            ctx.compute(SimTime::from_micros(25)); // stretch into the window
        }
        ctx.write(Loc(1), 1);
    });
    for _ in 0..2 {
        sys.spawn(|ctx| {
            ctx.await_eq(Loc(1), 1);
            assert_eq!(ctx.read_causal(Loc(0)), Value::Int(10));
        });
    }
    let outcome = sys.run()?;
    Ok(outcome.final_value(ProcId(1), Loc(0)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. duplication + reordering, session layer OFF ==");
    println!("{:<10} {:<36} note", "mode", "verdict");
    let cases = [
        (Mode::Pram, true, "apply-on-receipt trusts FIFO"),
        (Mode::Causal, false, "vector timestamps resequence"),
        (Mode::Mixed, false, "vector timestamps resequence"),
    ];
    for (mode, expect_violation, note) in cases {
        let broke_at = scan(mode, &noisy_plan(), false)?;
        let verdict = match broke_at {
            Some(seed) => format!("violation caught (seed {seed})"),
            None => "consistent on every seed".to_string(),
        };
        println!("{:<10} {:<36} [{note}]", mode.to_string(), verdict);
        assert_eq!(broke_at.is_some(), expect_violation, "{mode}");
    }

    println!("\n== 2. duplication + reordering + 10% loss, session layer ON ==");
    let lossy = noisy_plan().drop_rate(0.1);
    for mode in [Mode::Pram, Mode::Causal, Mode::Mixed] {
        let broke_at = scan(mode, &lossy, true)?;
        assert!(broke_at.is_none(), "{mode}: the session layer must mask every fault");
        println!("{:<10} consistent on every seed", mode.to_string());
    }
    // Loss without retransmission stalls every *blocking* operation: a
    // consumer awaiting a dropped flag write waits forever. (The muted
    // panic hook hides the kernel's noisy-but-expected deadlock unwind.)
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut sys = System::new(2, Mode::Pram).faults(FaultPlan::new().drop_rate(1.0));
    sys.spawn(|ctx| {
        ctx.write(Loc(0), 1);
    });
    sys.spawn(|ctx| {
        ctx.await_eq(Loc(0), 1);
    });
    match sys.run() {
        Err(RunError::Sim(SimError::Deadlock { .. })) => {
            println!("(and loss without the session layer deadlocks awaits, as expected)")
        }
        other => panic!("loss without retransmission cannot terminate: {other:?}"),
    }

    println!("\n== 3. crash/restart of a causal replica ==");
    match crash_run(false) {
        Err(RunError::Sim(SimError::Deadlock { .. })) => {
            println!("session OFF: the crashed replica never recovers  -> deadlock")
        }
        other => panic!("wiped deliveries cannot be recovered without a session: {other:?}"),
    }
    std::panic::set_hook(default_hook);
    let v = crash_run(true)?;
    assert_eq!(v, Value::Int(10));
    println!("session ON:  re-delivered after restart, replica 1 converged to {v}");

    println!("\nthe checkers detect real protocol faults, and the session layer");
    println!("restores the paper's channel assumptions over a faulty network.");
    Ok(())
}
